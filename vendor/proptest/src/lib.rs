//! Offline, vendored mini-`proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`Just`], the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros and a deterministic [`test_runner`].
//!
//! Differences from upstream: failing cases are **not shrunk** — the panic
//! message reports the case number and RNG seed instead, which together with
//! the deterministic [`rand`] stream makes every failure reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                    let mut __case = move
                        || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (not aborting the whole process) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (it is retried with fresh inputs and does not
/// count towards the case budget) when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

//! Service-level determinism: cached answers must be bitwise-identical to
//! cold solves, batches must be byte-identical at every thread count, and
//! the checked-in golden smoke files (which CI pipes through `tcim_serve`)
//! must stay in sync with the engine.

use std::sync::Arc;

use tcim_core::{solve, EstimatorConfig, ProblemSpec, WorldsConfig};
use tcim_diffusion::{Deadline, ParallelismConfig};
use tcim_service::{CacheConfig, Json, OracleCache, Request, ServiceEngine};

fn request(line: &str) -> Request {
    Request::parse_line(line).unwrap()
}

/// The repeated-query shape of the bench: one dataset, a τ × B grid.
fn grid_requests() -> Vec<Request> {
    let mut requests = Vec::new();
    for tau in [2u32, 3, 4, 5] {
        for budget in [2usize, 4, 6] {
            requests.push(request(&format!(
                r#"{{"id":"tau{tau}-b{budget}","op":"solve_budget","dataset":"synthetic","deadline":{tau},"samples":64,"estimator_seed":5,"budget":{budget}}}"#
            )));
        }
    }
    requests
}

#[test]
fn cache_hits_are_bitwise_identical_to_cold_solves() {
    let engine = ServiceEngine::new(ParallelismConfig::serial());
    let req = request(
        r#"{"op":"solve_budget","dataset":"synthetic","deadline":4,"samples":64,"estimator_seed":5,"budget":6}"#,
    );

    // Cold (miss), then warm (hit): byte-identical responses.
    let cold_response = engine.serve(&req).to_string();
    let stats = engine.cache().stats();
    assert_eq!((stats.oracle_hits, stats.oracle_misses), (0, 1));
    let warm_response = engine.serve(&req).to_string();
    let stats = engine.cache().stats();
    assert_eq!((stats.oracle_hits, stats.oracle_misses), (1, 1));
    assert_eq!(cold_response, warm_response, "a cache hit must not change the answer");

    // ... and identical to a solve that never touches the service layer.
    let graph = Arc::new(tcim_datasets::registry::Dataset::Synthetic.build(42).unwrap().graph);
    let oracle =
        EstimatorConfig::Worlds(WorldsConfig { num_worlds: 64, seed: 5, ..Default::default() })
            .build(graph, Deadline::finite(4))
            .unwrap();
    let report = solve(&oracle, &ProblemSpec::budget(6).unwrap()).unwrap();
    let served = Json::parse(&warm_response).unwrap();
    let served_seeds: Vec<u64> = served
        .get("seeds")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.as_u64().unwrap())
        .collect();
    let direct_seeds: Vec<u64> = report.seeds.iter().map(|s| s.0 as u64).collect();
    assert_eq!(served_seeds, direct_seeds, "served seeds must match the direct solve");
    let served_influence = served.get("influence").unwrap().as_arr().unwrap();
    for (a, b) in served_influence.iter().zip(report.influence.values()) {
        assert_eq!(a.as_f64().unwrap().to_bits(), b.to_bits(), "influence must match bitwise");
    }
}

#[test]
fn batches_are_byte_identical_across_thread_counts_and_cache_states() {
    let requests = grid_requests();
    let render = |responses: Vec<Json>| -> Vec<String> {
        responses.into_iter().map(|r| r.to_string()).collect()
    };

    let serial = render(ServiceEngine::new(ParallelismConfig::serial()).serve_batch(&requests));
    for threads in [2usize, 8] {
        let engine = ServiceEngine::new(ParallelismConfig::fixed(threads));
        let parallel = render(engine.serve_batch(&requests));
        assert_eq!(serial, parallel, "batch output differs at {threads} threads");
        // Serving the same batch again — now fully cached — must not change
        // a byte either.
        let warm = render(engine.serve_batch(&requests));
        assert_eq!(serial, warm, "warm batch output differs at {threads} threads");
    }
}

#[test]
fn one_world_pool_serves_the_whole_grid() {
    // The in-flight build deduplication makes these counts exact even when
    // the whole cold batch races through the cache on 8 worker threads (one
    // builder per key; everyone else waits and hits).
    for parallelism in [ParallelismConfig::serial(), ParallelismConfig::fixed(8)] {
        let engine = ServiceEngine::new(parallelism);
        let responses = engine.serve_batch(&grid_requests());
        assert!(responses.iter().all(|r| r.get("ok") == Some(&Json::Bool(true))));
        let stats = engine.cache().stats();
        // 12 queries over 4 deadlines: the worlds sample exactly once, every
        // other oracle construction reuses them (the whole point of the
        // cache).
        assert_eq!(stats.world_misses, 1, "worlds must sample once for the grid");
        assert_eq!(stats.world_hits, 3, "each further deadline reuses the pool");
        assert_eq!(stats.oracle_misses, 4, "one oracle per distinct deadline");
        assert_eq!(stats.oracle_hits, 8, "every repeated (τ) query hits");
    }
}

#[test]
fn eviction_under_budget_is_byte_identical() {
    // Scenario-diverse traffic against a budget far below its working set:
    // six inline scenarios, each sampling its own world pool. A 32 KiB / 2
    // shard cache cannot hold them all, so serving the sweep twice forces
    // evicted entries to rebuild — and the rebuilt answers must match the
    // unbounded engine's byte-for-byte, at 1 and at 8 threads.
    let requests: Vec<Request> = (0..6)
        .map(|seed| {
            request(&format!(
                r#"{{"id":"sbm-{seed}","op":"solve_budget","scenario":{{"family":"sbm","nodes":80,"p_within":0.05,"p_across":0.005,"majority_fraction":0.7,"weights":"uniform","edge_probability":0.1}},"dataset_seed":{seed},"deadline":3,"samples":24,"budget":2}}"#
            ))
        })
        .collect();
    let render = |responses: Vec<Json>| -> Vec<String> {
        responses.into_iter().map(|r| r.to_string()).collect()
    };

    let unbounded = ServiceEngine::new(ParallelismConfig::serial());
    let expected = render(unbounded.serve_batch(&requests));

    for parallelism in [ParallelismConfig::serial(), ParallelismConfig::fixed(8)] {
        let cache =
            Arc::new(OracleCache::with_config(CacheConfig { max_bytes: 32 * 1024, shards: 2 }));
        let engine = ServiceEngine::with_cache(Arc::clone(&cache), parallelism);
        let first = render(engine.serve_batch(&requests));
        let second = render(engine.serve_batch(&requests));
        assert_eq!(expected, first, "budgeted pass must match the unbounded engine");
        assert_eq!(expected, second, "evicted-and-rebuilt answers must not change");

        let stats = cache.stats();
        assert!(stats.evictions > 0, "the sweep must overflow 32 KiB: {stats:?}");
        assert!(stats.bytes_used <= stats.bytes_budget);
        for shard in cache.shard_stats() {
            assert!(
                shard.peak_bytes <= shard.bytes_budget,
                "peak bytes must honour the shard slice: {shard:?}"
            );
        }
    }
}

#[test]
fn shared_caches_serve_multiple_engines() {
    let cache = Arc::new(OracleCache::new());
    let a = ServiceEngine::with_cache(Arc::clone(&cache), ParallelismConfig::serial());
    let b = ServiceEngine::with_cache(Arc::clone(&cache), ParallelismConfig::serial());
    let req = request(
        r#"{"op":"estimate","dataset":"illustrative","deadline":2,"samples":32,"seeds":[0,5]}"#,
    );
    let first = a.serve(&req).to_string();
    let second = b.serve(&req).to_string();
    assert_eq!(first, second);
    assert_eq!(cache.stats().oracle_hits, 1, "the second engine must hit the shared cache");
}

#[test]
fn golden_churn_files_stay_in_sync() {
    // The churn batch extends the smoke batch with graph mutations and
    // post-mutation re-solves. Two invariants keep the pair honest:
    //  1. its first five requests (and their responses) are byte-identical
    //     to the smoke pair, so the pre-mutation prefix can never drift from
    //     the canonical smoke answers; and
    //  2. replaying the whole batch through the engine reproduces the golden
    //     responses byte-for-byte, mutation barriers included.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let requests_text = std::fs::read_to_string(dir.join("churn_requests.jsonl")).unwrap();
    let expected = std::fs::read_to_string(dir.join("churn_responses.jsonl")).unwrap();
    let smoke_requests = std::fs::read_to_string(dir.join("smoke_requests.jsonl")).unwrap();
    let smoke_responses = std::fs::read_to_string(dir.join("smoke_responses.jsonl")).unwrap();

    let payload = |text: &str| -> Vec<String> {
        text.lines()
            .map(str::trim)
            .filter(|line| !line.is_empty() && !line.starts_with('#'))
            .map(str::to_string)
            .collect()
    };
    let churn_lines = payload(&requests_text);
    let smoke_lines = payload(&smoke_requests);
    assert_eq!(churn_lines.len(), 12, "the churn batch is twelve requests");
    assert_eq!(
        &churn_lines[..smoke_lines.len()],
        &smoke_lines[..],
        "the churn batch must open with the smoke batch, byte-for-byte"
    );
    assert_eq!(
        expected.lines().take(smoke_lines.len()).collect::<Vec<_>>(),
        smoke_responses.lines().collect::<Vec<_>>(),
        "the pre-mutation churn responses must equal the smoke responses"
    );

    let requests: Vec<Request> = churn_lines
        .iter()
        .map(|line| Request::parse_line(line).expect("golden request must parse"))
        .collect();
    let engine = ServiceEngine::new(ParallelismConfig::auto());
    let mut produced = String::new();
    for response in engine.serve_batch(&requests) {
        produced.push_str(&response.to_string());
        produced.push('\n');
    }
    assert_eq!(
        produced, expected,
        "golden churn responses out of date; regenerate with:\n  cargo run -q -p tcim-service \
         --bin tcim_serve -- --quiet --input crates/service/tests/golden/churn_requests.jsonl \
         > crates/service/tests/golden/churn_responses.jsonl"
    );
    // The mutations actually exercised the incremental paths while producing
    // those bytes (the diffcheck harness proves incremental == cold).
    assert_eq!(engine.cache().mutations(), 2, "the batch carries two mutate requests");
    assert!(engine.cache().ris_refreshes() >= 1, "the RIS pool must refresh incrementally");
}

#[test]
fn golden_smoke_files_stay_in_sync() {
    // CI pipes the request file through `tcim_serve` and diffs stdout against
    // the response file at RAYON_NUM_THREADS 1 and 8; this test keeps the
    // pair honest from inside the test suite (and catches protocol drift at
    // `cargo test` time rather than in CI).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let requests_text = std::fs::read_to_string(dir.join("smoke_requests.jsonl")).unwrap();
    let expected = std::fs::read_to_string(dir.join("smoke_responses.jsonl")).unwrap();

    let requests: Vec<Request> = requests_text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| Request::parse_line(line).expect("golden request must parse"))
        .collect();
    assert_eq!(requests.len(), 5, "the smoke batch is five requests");

    let engine = ServiceEngine::new(ParallelismConfig::auto());
    let mut produced = String::new();
    for response in engine.serve_batch(&requests) {
        produced.push_str(&response.to_string());
        produced.push('\n');
    }
    assert_eq!(
        produced, expected,
        "golden responses out of date; regenerate with:\n  cargo run -q -p tcim-service --bin \
         tcim_serve -- --quiet --input crates/service/tests/golden/smoke_requests.jsonl \
         > crates/service/tests/golden/smoke_responses.jsonl"
    );
}

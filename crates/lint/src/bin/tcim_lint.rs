//! The `tcim-lint` CLI: check the workspace (or specific files) against
//! the project invariant rules and exit non-zero on violations.
//!
//! ```text
//! tcim_lint --workspace [--root DIR] [--lock-graph] [--emit MODE] [--stats] [--threads N]
//! tcim_lint [--root DIR] [--emit MODE] [--stats] FILE...
//! tcim_lint --list-rules
//! ```
//!
//! `--emit` selects the stdout format: `text` (default, one finding per
//! line), `json` (machine-readable document over minijson), or `github`
//! (GitHub Actions `::error` annotations). Output is byte-identical at
//! any `--threads` count: files are analyzed in parallel but merged in
//! sorted path order.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use tcim_lint::walk::rust_sources;
use tcim_lint::{analyze_file, emit, Analyzer, FileOutcome, Policy, Report, KNOWN_RULES};

/// What `--emit` writes to stdout.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Emit {
    Text,
    Json,
    Github,
}

struct Args {
    workspace: bool,
    root: PathBuf,
    lock_graph: bool,
    list_rules: bool,
    emit: Emit,
    stats: bool,
    threads: Option<usize>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        lock_graph: false,
        list_rules: false,
        emit: Emit::Text,
        stats: false,
        threads: None,
        files: Vec::new(),
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--lock-graph" => args.lock_graph = true,
            "--list-rules" => args.list_rules = true,
            "--stats" => args.stats = true,
            "--emit" => {
                let mode = it.next().ok_or("--emit needs a mode: text, json or github")?;
                args.emit = match mode.as_str() {
                    "text" => Emit::Text,
                    "json" => Emit::Json,
                    "github" => Emit::Github,
                    other => return Err(format!("unknown emit mode '{other}'")),
                };
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                let n: usize =
                    n.parse().map_err(|_| format!("--threads: '{n}' is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(n);
            }
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag '{flag}'"));
            }
            file => args.files.push(file.to_string()),
        }
    }
    if !args.list_rules && !args.workspace && args.files.is_empty() {
        return Err("nothing to check: pass --workspace or one or more files".to_string());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "tcim-lint: workspace invariant checker (see docs/LINTS.md)\n\
         \n\
         usage:\n\
         \x20 tcim_lint --workspace [--root DIR] [--lock-graph] [--emit MODE] [--stats] [--threads N]\n\
         \x20 tcim_lint [--root DIR] [--emit MODE] [--stats] FILE...\n\
         \x20 tcim_lint --list-rules\n\
         \n\
         emit modes: text (default), json, github\n\
         exit codes: 0 clean, 1 violations, 2 usage/io error"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in KNOWN_RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }

    // The unsafe-count pin is a workspace-total invariant: it is meaningful
    // only when the whole tree is in view, so explicit-file runs skip it.
    let policy = if args.workspace {
        Policy::default()
    } else {
        Policy { unsafe_pin: None, ..Policy::default() }
    };
    let mut analyzer = Analyzer::new(policy.clone());
    let mut checked = 0usize;

    if args.workspace {
        let files = match rust_sources(&args.root) {
            Ok(files) => files,
            Err(err) => {
                eprintln!("error: walking {}: {err}", args.root.display());
                return ExitCode::from(2);
            }
        };
        // Analyze in parallel (analyze_file is pure), then absorb in the
        // walker's sorted path order so every downstream artifact — finding
        // order, witness paths, the lock graph — is byte-identical at any
        // thread count.
        let scan = || {
            files
                .par_iter()
                .map(|(rel, abs)| {
                    fs::read_to_string(abs)
                        .map(|source| analyze_file(&policy, rel, &source))
                        .map_err(|err| format!("reading {}: {err}", abs.display()))
                })
                .collect::<Vec<Result<FileOutcome, String>>>()
        };
        let outcomes = match args.threads {
            Some(n) => match ThreadPoolBuilder::new().num_threads(n).build() {
                Ok(pool) => pool.install(scan),
                Err(err) => {
                    eprintln!("error: building thread pool: {err}");
                    return ExitCode::from(2);
                }
            },
            None => scan(),
        };
        for outcome in outcomes {
            match outcome {
                Ok(outcome) => {
                    analyzer.absorb(outcome);
                    checked += 1;
                }
                Err(err) => {
                    eprintln!("error: {err}");
                    return ExitCode::from(2);
                }
            }
        }
    } else {
        for file in &args.files {
            let abs = args.root.join(file);
            let rel = relative_key(&args.root, file, &abs);
            match fs::read_to_string(&abs) {
                Ok(source) => {
                    analyzer.check_file(&rel, &source);
                    checked += 1;
                }
                Err(err) => {
                    eprintln!("error: reading {}: {err}", abs.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    let report = analyzer.finish();

    if args.lock_graph {
        print_lock_graph(&report);
    }

    match args.emit {
        Emit::Text => {
            for finding in &report.findings {
                println!("{finding}");
            }
        }
        Emit::Json => {
            print!("{}", emit::render_json(&report, checked));
        }
        Emit::Github => {
            print!("{}", emit::render_github(&report.findings));
        }
    }
    if args.stats && args.emit != Emit::Json {
        // JSON embeds the stats; the table is for human eyes on stderr.
        eprint!("{}", emit::render_stats(&report));
    }
    if report.findings.is_empty() {
        eprintln!("tcim-lint: {checked} file(s) clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("tcim-lint: {} violation(s) in {checked} file(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

fn print_lock_graph(report: &Report) {
    if report.lock_graph.is_empty() {
        eprintln!("lock graph: no nested acquisitions");
    } else {
        eprintln!("lock graph (held -> acquired):");
        for edge in report.lock_graph.edges() {
            match &edge.via {
                Some(via) => {
                    eprintln!("  {} -> {}  ({} via {})", edge.from, edge.to, edge.site, via)
                }
                None => eprintln!("  {} -> {}  ({})", edge.from, edge.to, edge.site),
            }
        }
    }
}

/// The policy key for an explicitly-passed file: its path relative to the
/// root if it is inside the root, otherwise as given (normalized to `/`).
fn relative_key(root: &Path, as_given: &str, abs: &Path) -> String {
    let canonical_root = root.canonicalize().unwrap_or_else(|_| root.to_path_buf());
    let canonical = abs.canonicalize().unwrap_or_else(|_| abs.to_path_buf());
    match canonical.strip_prefix(&canonical_root) {
        Ok(rel) => rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/"),
        Err(_) => as_given.replace('\\', "/"),
    }
}

// Fixture: panic must fire on panicking constructs in library code.

pub fn first(values: &[u32]) -> u32 {
    // Violation: unwrap in library code.
    values.first().copied().unwrap()
}

pub fn must(value: Option<u32>) -> u32 {
    // Violation: expect in library code.
    value.expect("caller promised")
}

pub fn boom() {
    // Violation: explicit panic.
    panic!("nope");
}

pub fn later() {
    // Violation: todo! panics at runtime.
    todo!()
}

//! Activation traces: the outcome of a single cascade realisation.

use tcim_graph::{Graph, NodeId};

use crate::deadline::Deadline;

/// Sentinel meaning "never activated" (the paper's `t_v = -1`).
pub const NOT_ACTIVATED: u32 = u32::MAX;

/// Outcome of one realisation of a diffusion process: the activation time of
/// every node, with [`NOT_ACTIVATED`] for nodes the cascade never reached.
///
/// Seeds are activated at time 0; a node activated at step `t` was influenced
/// by a node activated at step `t - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationTrace {
    times: Vec<u32>,
}

impl ActivationTrace {
    /// Creates a trace from raw activation times (one entry per node).
    pub fn from_times(times: Vec<u32>) -> Self {
        ActivationTrace { times }
    }

    /// Number of nodes covered by the trace.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the trace covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Activation time of `node`, or `None` if it was never activated.
    pub fn activation_time(&self, node: NodeId) -> Option<u32> {
        match self.times.get(node.index()) {
            Some(&t) if t != NOT_ACTIVATED => Some(t),
            _ => None,
        }
    }

    /// Returns `true` if `node` was activated no later than `deadline`.
    pub fn activated_by(&self, node: NodeId, deadline: Deadline) -> bool {
        self.activation_time(node).is_some_and(|t| deadline.allows(t))
    }

    /// Number of nodes activated no later than `deadline`.
    pub fn num_activated_by(&self, deadline: Deadline) -> usize {
        self.times.iter().filter(|&&t| t != NOT_ACTIVATED && deadline.allows(t)).count()
    }

    /// Number of nodes of each group of `graph` that were activated no later
    /// than `deadline`.
    ///
    /// The returned vector has one entry per group id.
    pub fn group_activations(&self, graph: &Graph, deadline: Deadline) -> Vec<usize> {
        let mut counts = vec![0usize; graph.num_groups()];
        for (idx, &t) in self.times.iter().enumerate() {
            if t != NOT_ACTIVATED && deadline.allows(t) {
                counts[graph.group_of(NodeId::from_index(idx)).index()] += 1;
            }
        }
        counts
    }

    /// Largest activation time observed (`None` when nothing was activated).
    pub fn horizon(&self) -> Option<u32> {
        self.times.iter().filter(|&&t| t != NOT_ACTIVATED).max().copied()
    }

    /// Raw activation times slice.
    pub fn times(&self) -> &[u32] {
        &self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::{GraphBuilder, GroupId};

    fn two_group_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_nodes(3, GroupId(0));
        b.add_nodes(2, GroupId(1));
        b.build().unwrap()
    }

    #[test]
    fn activation_queries_respect_the_deadline() {
        let trace = ActivationTrace::from_times(vec![0, 1, NOT_ACTIVATED, 3, 2]);
        assert_eq!(trace.len(), 5);
        assert!(!trace.is_empty());
        assert_eq!(trace.activation_time(NodeId(0)), Some(0));
        assert_eq!(trace.activation_time(NodeId(2)), None);
        assert!(trace.activated_by(NodeId(1), Deadline::finite(1)));
        assert!(!trace.activated_by(NodeId(3), Deadline::finite(2)));
        assert_eq!(trace.num_activated_by(Deadline::finite(1)), 2);
        assert_eq!(trace.num_activated_by(Deadline::unbounded()), 4);
        assert_eq!(trace.horizon(), Some(3));
    }

    #[test]
    fn group_activations_split_by_group() {
        let g = two_group_graph();
        let trace = ActivationTrace::from_times(vec![0, 2, NOT_ACTIVATED, 1, NOT_ACTIVATED]);
        assert_eq!(trace.group_activations(&g, Deadline::unbounded()), vec![2, 1]);
        assert_eq!(trace.group_activations(&g, Deadline::finite(1)), vec![1, 1]);
        assert_eq!(trace.group_activations(&g, Deadline::finite(0)), vec![1, 0]);
    }

    #[test]
    fn empty_trace_has_no_horizon() {
        let trace = ActivationTrace::from_times(vec![]);
        assert!(trace.is_empty());
        assert_eq!(trace.horizon(), None);
        assert_eq!(trace.activation_time(NodeId(0)), None);
    }
}

//! Plain-text graph IO.
//!
//! Two simple line-oriented formats are supported so that the experiment
//! harness can run against the genuine Rice-Facebook / Instagram /
//! Facebook-SNAP files when they are available, instead of the built-in
//! surrogates:
//!
//! * **Edge list** — one edge per line: `source target [probability]`.
//!   Lines starting with `#` or `%` are comments. Node ids are arbitrary
//!   non-negative integers; they are compacted to dense ids in file order.
//! * **Group file** — one node per line: `node group`. Nodes missing from the
//!   file fall into group 0.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::{GroupId, NodeId};

/// Options controlling edge-list parsing.
#[derive(Debug, Clone)]
pub struct EdgeListOptions {
    /// Probability assigned to edges whose line omits the third column.
    pub default_probability: f64,
    /// Treat every line as an undirected tie (emit both directions).
    pub undirected: bool,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions { default_probability: 0.1, undirected: true }
    }
}

/// Result of parsing an edge list: the graph plus the mapping from original
/// file ids to dense [`NodeId`]s.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The parsed graph (all nodes initially in group 0 unless regrouped).
    pub graph: Graph,
    /// Maps original ids (as they appear in the file) to dense node ids.
    pub id_map: HashMap<u64, NodeId>,
}

/// Reads an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R, options: &EdgeListOptions) -> Result<LoadedGraph> {
    let reader = BufReader::new(reader);
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut builder = GraphBuilder::new();
    let intern = |raw: u64, builder: &mut GraphBuilder, map: &mut HashMap<u64, NodeId>| {
        *map.entry(raw).or_insert_with(|| builder.add_node(GroupId(0)))
    };

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let source: u64 = parse_field(parts.next(), line_no + 1, "source")?;
        let target: u64 = parse_field(parts.next(), line_no + 1, "target")?;
        let probability = match parts.next() {
            Some(tok) => tok.parse::<f64>().map_err(|_| GraphError::Parse {
                line: line_no + 1,
                message: format!("invalid probability '{tok}'"),
            })?,
            None => options.default_probability,
        };
        let s = intern(source, &mut builder, &mut id_map);
        let t = intern(target, &mut builder, &mut id_map);
        if options.undirected {
            builder.add_undirected_edge(s, t, probability)?;
        } else {
            builder.add_edge(s, t, probability)?;
        }
    }

    Ok(LoadedGraph { graph: builder.build()?, id_map })
}

fn parse_field(token: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let token = token
        .ok_or_else(|| GraphError::Parse { line, message: format!("missing {what} column") })?;
    token
        .parse::<u64>()
        .map_err(|_| GraphError::Parse { line, message: format!("invalid {what} '{token}'") })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    options: &EdgeListOptions,
) -> Result<LoadedGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, options)
}

/// Reads a group-assignment file (`node group` per line) and returns a dense
/// group vector for `loaded`, defaulting missing nodes to group 0.
///
/// Group labels are arbitrary non-negative integers and are compacted to dense
/// [`GroupId`]s in order of first appearance.
pub fn read_group_file<R: Read>(reader: R, loaded: &LoadedGraph) -> Result<Vec<GroupId>> {
    let reader = BufReader::new(reader);
    let mut groups = vec![GroupId(0); loaded.graph.num_nodes()];
    let mut label_map: HashMap<u64, GroupId> = HashMap::new();

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let raw_node: u64 = parse_field(parts.next(), line_no + 1, "node")?;
        let raw_group: u64 = parse_field(parts.next(), line_no + 1, "group")?;
        let next_id = label_map.len();
        let group = *label_map.entry(raw_group).or_insert_with(|| GroupId::from_index(next_id));
        if let Some(node) = loaded.id_map.get(&raw_node) {
            groups[node.index()] = group;
        }
    }
    Ok(groups)
}

/// Writes `graph` as an edge list (`source target probability` per line).
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# fairtcim edge list: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (s, t, p) in graph.edges() {
        writeln!(writer, "{} {} {}", s.0, t.0, p)?;
    }
    Ok(())
}

/// Writes the group assignment of `graph` (`node group` per line).
pub fn write_group_file<W: Write>(graph: &Graph, mut writer: W) -> Result<()> {
    for v in graph.nodes() {
        writeln!(writer, "{} {}", v.0, graph.group_of(v).0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# toy graph
0 1 0.5
1 2
% another comment
2 0 0.25
";

    #[test]
    fn parses_edge_list_with_defaults_and_comments() {
        let opts = EdgeListOptions { default_probability: 0.3, undirected: false };
        let loaded = read_edge_list(SAMPLE.as_bytes(), &opts).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        let probs: Vec<f64> = loaded.graph.edges().map(|(_, _, p)| p).collect();
        assert!(probs.contains(&0.3));
        assert!(probs.contains(&0.5));
    }

    #[test]
    fn undirected_option_duplicates_edges() {
        let loaded = read_edge_list(SAMPLE.as_bytes(), &EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 6);
    }

    #[test]
    fn sparse_original_ids_are_compacted() {
        let text = "1000 7\n7 42\n";
        let loaded = read_edge_list(text.as_bytes(), &EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert!(loaded.id_map.contains_key(&1000));
        assert!(loaded.id_map.contains_key(&42));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let err = read_edge_list("0 x\n".as_bytes(), &EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        let err = read_edge_list("0\n".as_bytes(), &EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn group_file_assigns_dense_group_ids() {
        let loaded = read_edge_list(SAMPLE.as_bytes(), &EdgeListOptions::default()).unwrap();
        let groups = read_group_file("0 10\n1 20\n2 10\n".as_bytes(), &loaded).unwrap();
        let g = loaded.graph.with_groups(groups).unwrap();
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.group_of(loaded.id_map[&0]), g.group_of(loaded.id_map[&2]));
        assert_ne!(g.group_of(loaded.id_map[&0]), g.group_of(loaded.id_map[&1]));
    }

    #[test]
    fn round_trip_write_then_read() {
        let loaded = read_edge_list(SAMPLE.as_bytes(), &EdgeListOptions::default()).unwrap();
        let mut edge_buf = Vec::new();
        write_edge_list(&loaded.graph, &mut edge_buf).unwrap();
        let mut group_buf = Vec::new();
        write_group_file(&loaded.graph, &mut group_buf).unwrap();

        let reread = read_edge_list(
            edge_buf.as_slice(),
            &EdgeListOptions { default_probability: 0.1, undirected: false },
        )
        .unwrap();
        assert_eq!(reread.graph.num_nodes(), loaded.graph.num_nodes());
        assert_eq!(reread.graph.num_edges(), loaded.graph.num_edges());
        let groups = read_group_file(group_buf.as_slice(), &reread).unwrap();
        assert_eq!(groups.len(), reread.graph.num_nodes());
    }
}

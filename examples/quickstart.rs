//! Quickstart: build a two-group social network, run the standard and the
//! fair time-critical influence-maximization solvers, and compare their
//! group-level outcomes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use fairtcim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A homophilous two-group network: 70% majority, dense within groups,
    //    sparse across (the Section 6.1 synthetic setting of the paper).
    let config = SyntheticConfig::default();
    let graph = Arc::new(config.build()?);
    println!(
        "graph: {} nodes, {} directed edges, groups {:?}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.group_sizes()
    );

    // 2. A time-critical influence oracle: information is only useful if it
    //    arrives within 5 hops, estimated over 200 live-edge worlds.
    let oracle = WorldEstimator::new(
        Arc::clone(&graph),
        Deadline::finite(5),
        &WorldsConfig { num_worlds: config.samples, seed: 1, ..Default::default() },
    )?;

    // 3. Pick 20 seeds with the classical objective (P1) and with the fair
    //    log-surrogate (P4).
    let budget = BudgetConfig::new(20);
    let unfair = solve_tcim_budget(&oracle, &budget)?;
    let fair = solve_fair_tcim_budget(&oracle, &budget, ConcaveWrapper::Log, None)?;

    // 4. Compare the two solutions.
    for report in [&unfair, &fair] {
        let fairness = report.fairness();
        println!("\n[{}] seeds: {:?}", report.label, report.seeds.len());
        println!("  total influenced fraction: {:.3}", fairness.total_fraction);
        for (group, fraction) in fairness.normalized_utilities.iter().enumerate() {
            println!("  group {group} ({} nodes): {:.3}", fairness.group_sizes[group], fraction);
        }
        println!("  disparity (Eq. 2): {:.3}", fairness.disparity);
    }

    println!(
        "\nfairness reduced disparity by {:.1}% at a {:.1}% cost in total influence",
        100.0 * (1.0 - fair.disparity() / unfair.disparity().max(f64::MIN_POSITIVE)),
        100.0 * (1.0 - fair.influence.total() / unfair.influence.total().max(f64::MIN_POSITIVE)),
    );
    Ok(())
}

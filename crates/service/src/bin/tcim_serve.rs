//! JSONL campaign-serving loop: read newline-delimited requests from stdin
//! (or `--input FILE`), serve them as one batch over a shared oracle cache,
//! and write one response per line to stdout, in request order.
//!
//! ```text
//! tcim_serve [--input FILE] [--threads N] [--quiet]
//! ```
//!
//! Blank lines and `#` comment lines are skipped. A line that fails to parse
//! produces an `"ok": false` response in its slot instead of aborting the
//! batch; if any slot failed, the process exits non-zero after printing
//! every response. Cache statistics go to stderr (never stdout: stdout is
//! the protocol surface and must stay byte-identical across thread counts,
//! which CI checks against a golden file). `--quiet` suppresses the stderr
//! summary.

use std::io::Read as _;
use std::process::ExitCode;

use tcim_diffusion::ParallelismConfig;
use tcim_service::protocol::error_response;
use tcim_service::{Request, ServiceEngine};

struct Cli {
    input: Option<String>,
    parallelism: ParallelismConfig,
    quiet: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli { input: None, parallelism: ParallelismConfig::auto(), quiet: false };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--input" => {
                cli.input =
                    Some(args.next().ok_or_else(|| "missing value for --input".to_string())?);
            }
            "--threads" => {
                let raw = args.next().ok_or_else(|| "missing value for --threads".to_string())?;
                let threads: usize = raw.parse().map_err(|_| {
                    format!("invalid value '{raw}' for --threads (expected an integer; 0 = auto)")
                })?;
                cli.parallelism = ParallelismConfig::fixed(threads);
            }
            "--quiet" => cli.quiet = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --input, --threads or --quiet)"
                ))
            }
        }
    }
    Ok(cli)
}

fn read_input(input: Option<&str>) -> Result<String, String> {
    match input {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read request file '{path}': {err}")),
        None => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|err| format!("cannot read requests from stdin: {err}"))?;
            Ok(text)
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let text = match read_input(cli.input.as_deref()) {
        Ok(text) => text,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    // Parse everything first so malformed lines keep their slot in the
    // response stream while well-formed ones still batch together.
    let mut parsed: Vec<Result<Request, String>> = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parsed.push(Request::parse_line(line).map_err(|err| format!("line {}: {err}", number + 1)));
    }

    let engine = ServiceEngine::new(cli.parallelism);
    let requests: Vec<Request> = parsed.iter().filter_map(|p| p.as_ref().ok()).cloned().collect();
    let mut served = engine.serve_batch(&requests).into_iter();
    let mut failures = 0usize;
    for slot in &parsed {
        let response = match slot {
            Ok(_) => served.next().expect("one response per request"),
            Err(message) => error_response(None, None, message),
        };
        if response.get("ok").and_then(|ok| ok.as_bool()) != Some(true) {
            failures += 1;
        }
        println!("{response}");
    }

    if !cli.quiet {
        let stats = engine.cache().stats();
        eprintln!(
            "served {} request(s) ({} failed): oracle cache {} hit(s) / {} miss(es), \
             world pool {} hit(s) / {} miss(es)",
            parsed.len(),
            failures,
            stats.oracle_hits,
            stats.oracle_misses,
            stats.world_hits,
            stats.world_misses
        );
    }
    // Scriptability: every response line is printed either way, but a batch
    // containing any failed slot (malformed line or ok:false response) exits
    // non-zero, matching `tcim_query`'s convention.
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

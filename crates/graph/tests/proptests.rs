//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use tcim_graph::generators::{stochastic_block_model, SbmConfig};
use tcim_graph::stats::graph_stats;
use tcim_graph::traversal::{bfs_distances, bfs_distances_multi, UNREACHABLE};
use tcim_graph::{GraphBuilder, GroupId, NodeId};

/// Strategy producing a small random edge list over `n` nodes.
fn edge_list(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edges =
            proptest::collection::vec((0..n as u32, 0..n as u32, 0.0f64..=1.0f64), 0..=max_edges);
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(u32, u32, f64)]) -> tcim_graph::Graph {
    let mut builder = GraphBuilder::new();
    for i in 0..n {
        builder.add_node(GroupId((i % 3) as u32));
    }
    for &(s, t, p) in edges {
        builder.add_edge(NodeId(s), NodeId(t), p).unwrap();
    }
    builder.build().unwrap()
}

proptest! {
    /// CSR construction preserves the (deduplicated) edge multiset and every
    /// per-node out-degree sums to the edge count.
    #[test]
    fn csr_preserves_edges((n, edges) in edge_list(30, 120)) {
        let graph = build_graph(n, &edges);
        let mut unique: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for &(s, t, _) in &edges {
            unique.insert((s, t));
        }
        prop_assert_eq!(graph.num_edges(), unique.len());
        let degree_sum: usize = graph.nodes().map(|v| graph.out_degree(v)).sum();
        prop_assert_eq!(degree_sum, graph.num_edges());
        for (s, t, p) in graph.edges() {
            prop_assert!(unique.contains(&(s.0, t.0)));
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// BFS distances satisfy the triangle-ish property along edges:
    /// d(t) <= d(s) + 1 for every edge (s, t) reachable from the source.
    #[test]
    fn bfs_distances_are_consistent((n, edges) in edge_list(25, 100)) {
        let graph = build_graph(n, &edges);
        let dist = bfs_distances(&graph, NodeId(0));
        prop_assert_eq!(dist[0], 0);
        for (s, t, _) in graph.edges() {
            if dist[s.index()] != UNREACHABLE {
                prop_assert!(dist[t.index()] != UNREACHABLE);
                prop_assert!(dist[t.index()] <= dist[s.index()] + 1);
            }
        }
    }

    /// Multi-source BFS from all nodes gives distance 0 everywhere.
    #[test]
    fn multi_source_bfs_from_everything_is_zero((n, edges) in edge_list(20, 60)) {
        let graph = build_graph(n, &edges);
        let sources: Vec<NodeId> = graph.nodes().collect();
        let dist = bfs_distances_multi(&graph, &sources);
        prop_assert!(dist.iter().all(|&d| d == 0));
    }

    /// Group sizes always sum to the node count and stats stay in range.
    #[test]
    fn group_stats_are_consistent((n, edges) in edge_list(25, 100)) {
        let graph = build_graph(n, &edges);
        let stats = graph_stats(&graph);
        let total: usize = stats.groups.iter().map(|g| g.size).sum();
        prop_assert_eq!(total, graph.num_nodes());
        prop_assert!(stats.assortativity >= -1.0 - 1e-9 && stats.assortativity <= 1.0 + 1e-9);
        let within_total: usize = stats.groups.iter().map(|g| g.within_edges).sum();
        prop_assert_eq!(within_total + stats.across_group_edges, graph.num_edges());
    }

    /// SBM generation is deterministic in its seed and respects group sizes.
    #[test]
    fn sbm_respects_sizes(seed in 0u64..1000, majority in 0.1f64..0.9) {
        let cfg = SbmConfig::two_group(60, majority, 0.1, 0.02, 0.1, seed);
        let g = stochastic_block_model(&cfg).unwrap();
        prop_assert_eq!(g.num_nodes(), 60);
        prop_assert_eq!(g.group_size(GroupId(0)) + g.group_size(GroupId(1)), 60);
        let again = stochastic_block_model(&cfg).unwrap();
        prop_assert_eq!(g, again);
    }
}

//! CI bench-regression gate: measures solve wall-time, estimator throughput,
//! held-out seed-set quality for the MC (live-edge worlds) and RIS engines,
//! and the campaign-serving cache speedup, on a quick synthetic instance.
//! Writes a machine-readable `BENCH_<sha>.json`, and — with `--check
//! <baseline.json>` — exits non-zero when any metric regresses more than 25%
//! against the checked-in baseline.
//!
//! ```text
//! bench_regression [--out PATH] [--check BASELINE] [--sha SHA]
//! ```
//!
//! `--sha` defaults to `$GITHUB_SHA`, then "local". Quality metrics are
//! fully deterministic (fixed seeds); wall-times vary with the runner, which
//! is why the checked-in baseline carries generous headroom on top of the
//! 25% gate. The `service_cache_speedup` ratio divides two wall-times
//! measured in the same process, so runner speed largely cancels out — its
//! baseline enforces the "cached serving amortizes estimator construction"
//! contract (>= 5x on the 20-query grid). `service_warm_hit_rate` replays
//! the grid twice through a byte-budgeted cache and gates the oracle hit
//! rate (deterministically 0.75 under segmented LRU), so an eviction-policy
//! regression that churns hot entries fails CI even when wall-times pass.

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use tcim_bench::regression::{compare, BenchRecord, REGRESSION_TOLERANCE};
use tcim_core::{solve, EstimatorConfig, ProblemSpec, RisConfig, WorldsConfig};
use tcim_datasets::churn::ChurnConfig;
use tcim_datasets::SyntheticConfig;
use tcim_diffusion::{
    Deadline, InfluenceOracle, MonteCarloEstimator, ParallelismConfig, RisEstimator,
};
use tcim_graph::NodeId;
use tcim_service::{Op, Request, ServiceEngine};

struct Cli {
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    sha: String,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        out: None,
        check: None,
        sha: std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--check" => cli.check = Some(PathBuf::from(value("--check")?)),
            "--sha" => cli.sha = value("--sha")?,
            other => eprintln!("warning: ignoring unknown flag '{other}'"),
        }
    }
    Ok(cli)
}

/// Times `op` and returns (milliseconds, result).
fn timed<R>(op: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = op();
    (start.elapsed().as_secs_f64() * 1e3, result)
}

/// The repeated-query serving workload: 20 budget solves over a τ × B grid
/// against one dataset — the access pattern the paper's figures imply
/// (every panel re-solves the same graph under varying deadline / budget).
fn service_grid() -> Vec<Request> {
    // A fixed 24-node candidate pool, like the paper's Instagram experiment:
    // campaign serving picks from a vetted pool, and the pool keeps the
    // greedy's candidate scan proportionate to the query instead of the
    // whole graph.
    let candidates: Vec<String> = (0..24).map(|n| n.to_string()).collect();
    let candidates = candidates.join(",");
    let mut requests = Vec::new();
    for tau in [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
        for budget in [1usize, 2] {
            let line = format!(
                r#"{{"id":"tau{tau}-b{budget}","op":"solve_budget","dataset":"synthetic","deadline":{tau},"samples":600,"estimator_seed":7,"budget":{budget},"candidates":[{candidates}]}}"#
            );
            requests.push(Request::parse_line(&line).expect("static request line"));
        }
    }
    requests
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}");
            exit(2);
        }
    };
    let mut record = BenchRecord::new(&cli.sha);

    // Quick instance: big enough that estimator costs dominate, small enough
    // for a CI smoke job.
    let graph =
        Arc::new(SyntheticConfig { num_nodes: 600, ..SyntheticConfig::default() }.build().unwrap());
    let deadline = Deadline::finite(5);
    let budget = 10;

    // --- MC (live-edge worlds) engine: build + greedy/CELF solve ----------
    let mc_spec = ProblemSpec::budget(budget)
        .expect("positive budget")
        .with_deadline(deadline)
        .with_estimator(EstimatorConfig::Worlds(WorldsConfig {
            num_worlds: 200,
            seed: 1,
            ..Default::default()
        }));
    let (mc_solve_ms, mc_report) = timed(|| {
        let oracle = mc_spec
            .estimator
            .as_ref()
            .expect("estimator set above")
            .build(Arc::clone(&graph), deadline)
            .expect("world oracle");
        solve(&oracle, &mc_spec).expect("world solve")
    });
    record.push("mc_solve_ms", mc_solve_ms);
    record.push_spec("mc_solve_ms", &mc_spec.canonical());

    // --- RIS engine: build + greedy/CELF solve ----------------------------
    let ris_spec = ProblemSpec::budget(budget)
        .expect("positive budget")
        .with_deadline(deadline)
        .with_estimator(EstimatorConfig::Ris(RisConfig {
            num_sets: 20_000,
            seed: 2,
            ..Default::default()
        }));
    let (ris_solve_ms, ris_report) = timed(|| {
        let oracle = ris_spec
            .estimator
            .as_ref()
            .expect("estimator set above")
            .build(Arc::clone(&graph), deadline)
            .expect("ris oracle");
        solve(&oracle, &ris_spec).expect("ris solve")
    });
    record.push("ris_solve_ms", ris_solve_ms);
    record.push_spec("ris_solve_ms", &ris_spec.canonical());

    // --- Estimator throughput: evaluations per second ---------------------
    let eval_seeds: Vec<NodeId> = mc_report.seeds.clone();
    let world_oracle =
        EstimatorConfig::Worlds(WorldsConfig { num_worlds: 200, seed: 1, ..Default::default() })
            .build(Arc::clone(&graph), deadline)
            .expect("world oracle");
    let (mc_eval_ms, _) = timed(|| {
        for _ in 0..50 {
            world_oracle.evaluate(&eval_seeds).expect("world evaluate");
        }
    });
    record.push("mc_eval_per_s", 50.0 / (mc_eval_ms / 1e3));

    let ris_oracle = ris_spec
        .estimator
        .as_ref()
        .expect("estimator set above")
        .build(Arc::clone(&graph), deadline)
        .expect("ris oracle");
    let (ris_eval_ms, _) = timed(|| {
        for _ in 0..50 {
            ris_oracle.evaluate(&eval_seeds).expect("ris evaluate");
        }
    });
    record.push("ris_eval_per_s", 50.0 / (ris_eval_ms / 1e3));

    // --- Seed-set quality under a common held-out estimator ---------------
    // Deterministic (fixed seeds), so the 25% gate also catches correctness
    // regressions that silently degrade selection quality.
    let held_out = MonteCarloEstimator::new(Arc::clone(&graph), deadline, 400, 99).unwrap();
    let mc_quality = held_out.evaluate(&mc_report.seeds).unwrap().total();
    let ris_quality = held_out.evaluate(&ris_report.seeds).unwrap().total();
    record.push("mc_quality", mc_quality);
    record.push("ris_quality", ris_quality);

    // --- Campaign serving: 20-query grid, cold vs cached ------------------
    // Cold: a throwaway engine per request, so every solve re-samples its
    // world collection — what the fig binaries do today. Cached: one engine,
    // one batch; the deadline-independent world pool samples once and every
    // (τ, B) query shares it. Same requests, byte-identical responses.
    let requests = service_grid();
    let (service_cold_ms, cold_responses) = timed(|| {
        requests
            .iter()
            .map(|request| ServiceEngine::new(ParallelismConfig::auto()).serve(request).to_string())
            .collect::<Vec<String>>()
    });
    let cached_engine = ServiceEngine::new(ParallelismConfig::auto());
    let (service_cached_ms, cached_responses) = timed(|| {
        cached_engine
            .serve_batch(&requests)
            .into_iter()
            .map(|response| response.to_string())
            .collect::<Vec<String>>()
    });
    if cold_responses != cached_responses {
        eprintln!("bench-regression: FATAL: cached responses differ from cold responses");
        exit(1);
    }
    let stats = cached_engine.cache().stats();
    eprintln!(
        "service grid: {} requests, world pool {} miss(es) / {} hit(s)",
        requests.len(),
        stats.world_misses,
        stats.world_hits
    );
    record.push("service_cold20_ms", service_cold_ms);
    record.push("service_cached20_ms", service_cached_ms);
    record.push("service_cache_speedup", service_cold_ms / service_cached_ms);
    // The grid is one spec shape swept over (τ, B); annotate with the first
    // decoded request so the record names the workload.
    if let Some(Op::Solve(spec)) = requests.first().map(|request| &request.op) {
        record.push_spec("service_cold20_ms", &spec.canonical());
    }

    // --- Warm hit rate under the budgeted cache ---------------------------
    // Replay the grid twice through an engine with a deliberately modest
    // budget: the segmented-LRU policy must keep the grid's working set
    // resident, so the oracle hit rate is exactly deterministic (pass one:
    // 10 misses then 10 τ-sharing hits; pass two: 20 hits — 0.75 overall).
    // A FIFO-style policy that churns hot entries would tank this metric,
    // which is what the baseline gate guards.
    let budgeted_engine = ServiceEngine::with_cache(
        Arc::new(tcim_service::OracleCache::with_config(tcim_service::CacheConfig {
            max_bytes: 64 << 20,
            shards: 4,
        })),
        ParallelismConfig::auto(),
    );
    let first_pass: Vec<String> =
        budgeted_engine.serve_batch(&requests).into_iter().map(|r| r.to_string()).collect();
    let second_pass: Vec<String> =
        budgeted_engine.serve_batch(&requests).into_iter().map(|r| r.to_string()).collect();
    if first_pass != cached_responses || second_pass != cached_responses {
        eprintln!("bench-regression: FATAL: budgeted responses differ from unbounded responses");
        exit(1);
    }
    let warm_stats = budgeted_engine.cache().stats();
    let warm_hit_rate = warm_stats.oracle_hit_rate().unwrap_or(0.0);
    eprintln!(
        "budgeted grid: oracle {} hit(s) / {} miss(es), {} eviction(s), {}/{} byte(s)",
        warm_stats.oracle_hits,
        warm_stats.oracle_misses,
        warm_stats.evictions,
        warm_stats.bytes_used,
        warm_stats.bytes_budget
    );
    record.push("service_warm_hit_rate", warm_hit_rate);

    // --- Incremental sketch refresh vs cold rebuild under churn -----------
    // Sparse edge churn (a few edges per step) against the 20k-sketch RIS
    // pool: `refresh` resamples only the RR sets that touch a mutated edge,
    // a cold rebuild resamples all of them. The ratio divides two wall-times
    // from the same process (runner speed cancels), and the baseline gate
    // enforces the incremental path's reason to exist: refreshing after a
    // sparse mutation must stay well over 2x cheaper than rebuilding. The
    // refreshed pool must also stay bitwise-identical to the cold one — a
    // divergence is a determinism bug, not a perf number.
    let ris_config = RisConfig { num_sets: 20_000, seed: 2, ..Default::default() };
    let churn = ChurnConfig::new(8, 2, 11).generate(&graph).expect("churn sequence");
    let mut live = Arc::clone(&graph);
    let mut warm =
        RisEstimator::new(Arc::clone(&live), deadline, &ris_config).expect("warm ris pool");
    let (mut cold_total_ms, mut refresh_total_ms) = (0.0f64, 0.0f64);
    for ops in &churn.steps {
        live = Arc::new(live.apply(ops).expect("churn step applies"));
        let touched: Vec<NodeId> = ops.iter().map(|op| op.endpoints().1).collect();
        let (refresh_ms, _resampled) =
            timed(|| warm.refresh(Arc::clone(&live), &touched).expect("incremental refresh"));
        let (cold_ms, cold) = timed(|| {
            RisEstimator::new(Arc::clone(&live), deadline, &ris_config).expect("cold ris pool")
        });
        refresh_total_ms += refresh_ms;
        cold_total_ms += cold_ms;
        let warm_influence = warm.evaluate(&eval_seeds).expect("warm evaluate");
        let cold_influence = cold.evaluate(&eval_seeds).expect("cold evaluate");
        if warm_influence.total().to_bits() != cold_influence.total().to_bits() {
            eprintln!(
                "bench-regression: FATAL: refreshed RIS pool diverged from a cold rebuild at \
                 graph version {} ({} vs {})",
                live.version(),
                warm_influence.total(),
                cold_influence.total()
            );
            exit(1);
        }
    }
    eprintln!(
        "churn refresh: {} step(s), {:.1}ms refreshed vs {:.1}ms cold",
        churn.steps.len(),
        refresh_total_ms,
        cold_total_ms
    );
    record.push("incremental_refresh_speedup", cold_total_ms / refresh_total_ms);

    print!("{}", record.to_json());

    if let Some(out) = &cli.out {
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(err) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create --out directory '{}': {err}", parent.display());
                exit(2);
            }
        }
        if let Err(err) = std::fs::write(out, record.to_json()) {
            eprintln!("error: cannot write --out file '{}': {err}", out.display());
            exit(2);
        }
        eprintln!("wrote {}", out.display());
    }

    if let Some(baseline_path) = &cli.check {
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|err| {
            eprintln!("error: cannot read --check baseline '{}': {err}", baseline_path.display());
            exit(2);
        });
        let baseline = BenchRecord::parse_json(&text).unwrap_or_else(|err| {
            eprintln!("error: cannot parse --check baseline '{}': {err}", baseline_path.display());
            exit(2);
        });
        let violations = compare(&record, &baseline, REGRESSION_TOLERANCE);
        if violations.is_empty() {
            eprintln!(
                "bench-regression: clean against baseline {} ({})",
                baseline_path.display(),
                baseline.sha
            );
        } else {
            eprintln!("bench-regression: {} violation(s):", violations.len());
            for violation in &violations {
                eprintln!("  {violation}");
            }
            exit(1);
        }
    }
}

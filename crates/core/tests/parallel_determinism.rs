//! Solver-level determinism: running the full TCIM / FairTCIM pipeline on a
//! parallel estimator must select the same seeds and report bitwise-identical
//! influence, whatever the thread count. This is the end-to-end counterpart
//! of the estimator-level checks in `tcim-diffusion`.

use std::sync::Arc;

use tcim_core::{solve, ConcaveWrapper, FairnessMode, ParallelismConfig, ProblemSpec};
use tcim_diffusion::{Deadline, WorldEstimator, WorldsConfig};
use tcim_graph::generators::{stochastic_block_model, SbmConfig};

fn oracle(threads: ParallelismConfig) -> WorldEstimator {
    let graph = Arc::new(
        stochastic_block_model(&SbmConfig::two_group(120, 0.7, 0.04, 0.005, 0.1, 13)).unwrap(),
    );
    WorldEstimator::new(
        graph,
        Deadline::finite(4),
        &WorldsConfig { num_worlds: 48, seed: 5, parallelism: threads },
    )
    .unwrap()
}

#[test]
fn budget_solvers_agree_across_thread_counts() {
    let p1 = ProblemSpec::budget(5).unwrap();
    let p4 = p1.clone().with_fairness_wrapper(ConcaveWrapper::Log).unwrap();
    let reference = {
        let est = oracle(ParallelismConfig::serial());
        (solve(&est, &p1).unwrap(), solve(&est, &p4).unwrap())
    };

    for threads in [2usize, 8] {
        let est = oracle(ParallelismConfig::fixed(threads));
        let unfair = solve(&est, &p1).unwrap();
        let fair = solve(&est, &p4).unwrap();
        assert_eq!(reference.0.seeds, unfair.seeds, "unfair seeds differ at {threads} threads");
        assert_eq!(reference.1.seeds, fair.seeds, "fair seeds differ at {threads} threads");
        for (a, b) in [(&reference.0, &unfair), (&reference.1, &fair)] {
            for (x, y) in a.influence.values().iter().zip(b.influence.values()) {
                assert_eq!(x.to_bits(), y.to_bits(), "influence differs at {threads} threads");
            }
        }
    }
}

#[test]
fn cover_solver_agrees_across_thread_counts() {
    let p2 = ProblemSpec::cover(0.2).unwrap();
    let reference = solve(&oracle(ParallelismConfig::serial()), &p2).unwrap();
    for threads in [2usize, 8] {
        let result = solve(&oracle(ParallelismConfig::fixed(threads)), &p2).unwrap();
        assert_eq!(reference.seeds, result.seeds, "cover seeds differ at {threads} threads");
        assert_eq!(reference.cover, result.cover);
    }
}

#[test]
fn capped_solves_agree_across_thread_counts() {
    // The P3 ladder sweep runs several inner solves; the whole sweep must
    // still be a pure function of the spec at any thread count.
    let p3 = ProblemSpec::budget(4)
        .unwrap()
        .with_fairness(FairnessMode::Constrained { disparity_cap: 0.2 })
        .unwrap();
    let reference = solve(&oracle(ParallelismConfig::serial()), &p3).unwrap();
    for threads in [2usize, 8] {
        let result = solve(&oracle(ParallelismConfig::fixed(threads)), &p3).unwrap();
        assert_eq!(reference.seeds, result.seeds, "P3 seeds differ at {threads} threads");
        assert_eq!(reference.constrained, result.constrained);
    }
}

//! Migration guard: each deprecated `solve_*` shim must be **bitwise
//! identical** to the spec-based `tcim_core::solve` call it is documented to
//! be replaced by — seeds, per-group influence bits, iteration records and
//! outcome flags — at 1 and at 8 estimation threads.

#![allow(deprecated)] // this compat test exercises the legacy shims on purpose

use std::sync::Arc;

use tcim_core::{
    solve, solve_constrained_budget, solve_constrained_cover, solve_fair_tcim_budget,
    solve_fair_tcim_cover, solve_group_tcim_cover, solve_tcim_budget, solve_tcim_cover,
    BudgetConfig, ConcaveWrapper, CoverProblemConfig, FairnessMode, ParallelismConfig, ProblemSpec,
    SolverReport,
};
use tcim_diffusion::{Deadline, WorldEstimator, WorldsConfig};
use tcim_graph::generators::{stochastic_block_model, SbmConfig};
use tcim_graph::GroupId;

fn oracle(threads: ParallelismConfig) -> WorldEstimator {
    let graph = Arc::new(
        stochastic_block_model(&SbmConfig::two_group(100, 0.7, 0.06, 0.01, 0.15, 21)).unwrap(),
    );
    WorldEstimator::new(
        graph,
        Deadline::finite(4),
        &WorldsConfig { num_worlds: 40, seed: 9, parallelism: threads },
    )
    .unwrap()
}

fn assert_bitwise_identical(legacy: &SolverReport, unified: &SolverReport, what: &str) {
    assert_eq!(legacy.seeds, unified.seeds, "{what}: seeds differ");
    assert_eq!(legacy.label, unified.label, "{what}: labels differ");
    assert_eq!(legacy.gain_evaluations, unified.gain_evaluations, "{what}: gain counts differ");
    for (a, b) in legacy.influence.values().iter().zip(unified.influence.values()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: influence differs bitwise");
    }
    assert_eq!(legacy.iterations.len(), unified.iterations.len(), "{what}: iteration counts");
    for (a, b) in legacy.iterations.iter().zip(&unified.iterations) {
        assert_eq!(a.seed, b.seed, "{what}: iteration seed differs");
        assert_eq!(
            a.objective_value.to_bits(),
            b.objective_value.to_bits(),
            "{what}: objective value differs bitwise"
        );
    }
    assert_eq!(legacy.cover, unified.cover, "{what}: cover outcome differs");
    assert_eq!(legacy.constrained, unified.constrained, "{what}: constrained outcome differs");
    assert_eq!(legacy.spec, unified.spec, "{what}: spec echo differs");
}

#[test]
fn every_shim_is_bitwise_identical_to_its_spec_solve() {
    for threads in [ParallelismConfig::fixed(1), ParallelismConfig::fixed(8)] {
        let est = oracle(threads);
        let budget_config = BudgetConfig::new(5).unwrap();
        let cover_config = CoverProblemConfig::new(0.15).unwrap();
        let p1 = ProblemSpec::budget(5).unwrap();
        let p2 = ProblemSpec::cover(0.15).unwrap();

        // P1.
        assert_bitwise_identical(
            &solve_tcim_budget(&est, &budget_config).unwrap(),
            &solve(&est, &p1).unwrap(),
            "P1",
        );

        // P4 with weights.
        let weights = Some(vec![1.0, 3.0]);
        assert_bitwise_identical(
            &solve_fair_tcim_budget(&est, &budget_config, ConcaveWrapper::Log, weights.clone())
                .unwrap(),
            &solve(
                &est,
                &p1.clone()
                    .with_fairness(FairnessMode::Concave { wrapper: ConcaveWrapper::Log, weights })
                    .unwrap(),
            )
            .unwrap(),
            "P4",
        );

        // P2.
        let legacy = solve_tcim_cover(&est, &cover_config).unwrap();
        assert_bitwise_identical(&legacy.report, &solve(&est, &p2).unwrap(), "P2");

        // P6.
        let legacy = solve_fair_tcim_cover(&est, &cover_config).unwrap();
        assert_bitwise_identical(
            &legacy.report,
            &solve(
                &est,
                &p2.clone().with_fairness(FairnessMode::GroupQuota { group: None }).unwrap(),
            )
            .unwrap(),
            "P6",
        );

        // Per-group cover.
        let legacy = solve_group_tcim_cover(&est, GroupId(1), &cover_config).unwrap();
        assert_bitwise_identical(
            &legacy.report,
            &solve(
                &est,
                &p2.clone()
                    .with_fairness(FairnessMode::GroupQuota { group: Some(GroupId(1)) })
                    .unwrap(),
            )
            .unwrap(),
            "P2-g1",
        );

        // P3 (capped budget).
        let legacy = solve_constrained_budget(&est, &budget_config, 0.1).unwrap();
        let unified = solve(
            &est,
            &p1.clone().with_fairness(FairnessMode::Constrained { disparity_cap: 0.1 }).unwrap(),
        )
        .unwrap();
        assert_bitwise_identical(&legacy.report, &unified, "P3");
        let outcome = unified.constrained.as_ref().unwrap();
        assert_eq!(Some(legacy.wrapper), outcome.wrapper);
        assert_eq!(legacy.weights, outcome.weights);
        assert_eq!(legacy.feasible, outcome.feasible);

        // P5 (capped cover).
        let legacy = solve_constrained_cover(&est, &cover_config, 0.4).unwrap();
        let unified = solve(
            &est,
            &p2.clone().with_fairness(FairnessMode::Constrained { disparity_cap: 0.4 }).unwrap(),
        )
        .unwrap();
        assert_bitwise_identical(&legacy.cover.report, &unified, "P5");
        let outcome = unified.constrained.as_ref().unwrap();
        assert_eq!(Some(legacy.effective_quota), outcome.effective_quota);
        assert_eq!(legacy.feasible, outcome.feasible);
    }
}

#[test]
fn shim_and_spec_results_are_bitwise_stable_across_thread_counts() {
    // The equivalence above is per-thread-count; this pins the pair of
    // (shim, spec) results at 8 threads to the 1-thread reference, closing
    // the square.
    let one =
        solve(&oracle(ParallelismConfig::fixed(1)), &ProblemSpec::budget(5).unwrap()).unwrap();
    let eight =
        solve(&oracle(ParallelismConfig::fixed(8)), &ProblemSpec::budget(5).unwrap()).unwrap();
    assert_bitwise_identical(&one, &eight, "P1 across thread counts");
}

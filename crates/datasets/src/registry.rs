//! A small registry tying every evaluation dataset to the experiment
//! parameters the paper uses with it.

use tcim_graph::generators::{illustrative_example, IllustrativeConfig};
use tcim_graph::{Graph, Result};

use crate::fbsnap::{fbsnap_surrogate, FBSNAP_DEADLINE, FBSNAP_EDGE_PROBABILITY};
use crate::instagram::{
    instagram_surrogate, InstagramConfig, INSTAGRAM_CANDIDATE_POOL, INSTAGRAM_DEADLINE,
};
use crate::rice::{rice_facebook_surrogate, RICE_EDGE_PROBABILITY, RICE_SAMPLES};
use crate::scenario::ScenarioSpec;
use crate::synthetic::SyntheticConfig;

/// The datasets used in the paper's evaluation, plus the open scenario
/// space.
///
/// The first five arms are the paper's fixed evaluation graphs ("named
/// datasets"); [`Dataset::Scenario`] carries a [`ScenarioSpec`] and opens
/// the registry to every generator-family × size × group-model ×
/// weight-model combination without further enum growth. Everything
/// downstream — the oracle cache, the JSONL protocol, the `Campaign`
/// builder — treats the two uniformly through [`Dataset::build`] and
/// [`Dataset::name`].
#[derive(Debug, Clone, PartialEq)]
pub enum Dataset {
    /// The 38-node illustrative example of Figure 1.
    Illustrative,
    /// The Section 6.1 synthetic stochastic block model.
    Synthetic,
    /// The Rice-Facebook surrogate (Section 7.1).
    RiceFacebook,
    /// The Instagram-Activities surrogate, default 10% scale (Section 7.1).
    InstagramActivities,
    /// The Facebook-SNAP surrogate (Appendix C).
    FacebookSnap,
    /// A typed synthetic scenario (see [`crate::scenario`]).
    Scenario(ScenarioSpec),
}

/// Experiment parameters recommended for a dataset (the paper's settings).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDefaults {
    /// Deadline `τ` (`None` = ∞).
    pub deadline: Option<u32>,
    /// Monte-Carlo samples / live-edge worlds.
    pub samples: usize,
    /// Seed budget `B` for budget experiments.
    pub budget: usize,
    /// Coverage quotas swept in cover experiments.
    pub quotas: Vec<f64>,
    /// Size of the random candidate pool, if the dataset restricts seeds.
    pub candidate_pool: Option<usize>,
}

/// A dataset instance plus metadata and recommended parameters.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Human-readable name used in experiment tables.
    pub name: &'static str,
    /// One-line description including the substitution note where relevant.
    pub description: &'static str,
    /// The graph.
    pub graph: Graph,
    /// Recommended experiment parameters.
    pub defaults: ExperimentDefaults,
}

impl Dataset {
    /// All **named** datasets, in the order the paper presents them
    /// (scenarios are an open space and cannot be enumerated).
    pub const ALL: [Dataset; 5] = [
        Dataset::Illustrative,
        Dataset::Synthetic,
        Dataset::RiceFacebook,
        Dataset::InstagramActivities,
        Dataset::FacebookSnap,
    ];

    /// The stable registry name: the protocol's `"dataset"` values for the
    /// named datasets, `"scenario"` for scenario datasets (whose full
    /// identity is the [`ScenarioSpec::fingerprint`]).
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Illustrative => "illustrative",
            Dataset::Synthetic => "synthetic",
            Dataset::RiceFacebook => "rice-facebook",
            Dataset::InstagramActivities => "instagram-activities",
            Dataset::FacebookSnap => "facebook-snap",
            Dataset::Scenario(_) => "scenario",
        }
    }

    /// The nominal per-edge activation probability the dataset is built
    /// with — `None` when the weights are degree-dependent (weighted-cascade
    /// and LT scenarios have no single nominal value).
    ///
    /// Folded into the enum (it used to be a free function) so adding a
    /// dataset or generator arm fails to compile here until the new arm
    /// declares its probability, instead of silently missing a match.
    pub fn default_edge_probability(&self) -> Option<f64> {
        match self {
            Dataset::Illustrative => Some(0.7),
            Dataset::Synthetic => Some(0.05),
            Dataset::RiceFacebook => Some(RICE_EDGE_PROBABILITY),
            Dataset::InstagramActivities => Some(crate::instagram::INSTAGRAM_EDGE_PROBABILITY),
            Dataset::FacebookSnap => Some(FBSNAP_EDGE_PROBABILITY),
            Dataset::Scenario(spec) => spec.default_edge_probability(),
        }
    }

    /// Builds the dataset graph and bundles it with its recommended
    /// experiment parameters.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn build(&self, seed: u64) -> Result<DatasetBundle> {
        match self {
            Dataset::Illustrative => {
                let (graph, _) = illustrative_example(&IllustrativeConfig::default())?;
                Ok(DatasetBundle {
                    dataset: self.clone(),
                    name: "illustrative",
                    description: "38-node planted example of Figure 1 (p_e = 0.7)",
                    graph,
                    defaults: ExperimentDefaults {
                        deadline: Some(2),
                        samples: 2000,
                        budget: 2,
                        quotas: vec![0.2],
                        candidate_pool: None,
                    },
                })
            }
            Dataset::Synthetic => {
                let config = SyntheticConfig::default().with_seed(seed);
                let graph = config.build()?;
                Ok(DatasetBundle {
                    dataset: self.clone(),
                    name: "synthetic-sbm",
                    description: "Section 6.1 two-group SBM (500 nodes, g = 0.7, p_e = 0.05)",
                    graph,
                    defaults: ExperimentDefaults {
                        deadline: Some(config.deadline),
                        samples: config.samples,
                        budget: config.budget,
                        quotas: vec![0.1, 0.2, 0.3],
                        candidate_pool: None,
                    },
                })
            }
            Dataset::RiceFacebook => Ok(DatasetBundle {
                dataset: self.clone(),
                name: "rice-facebook",
                description: "surrogate matching the published Rice-Facebook group statistics (p_e = 0.01)",
                graph: rice_facebook_surrogate(seed)?,
                defaults: ExperimentDefaults {
                    deadline: Some(20),
                    samples: RICE_SAMPLES,
                    budget: 30,
                    quotas: vec![0.1, 0.2, 0.3],
                    candidate_pool: None,
                },
            }),
            Dataset::InstagramActivities => Ok(DatasetBundle {
                dataset: self.clone(),
                name: "instagram-activities",
                description: "surrogate matching the published Instagram gender statistics, 10% scale (p_e = 0.06)",
                graph: instagram_surrogate(&InstagramConfig { scale: 0.1, seed })?,
                defaults: ExperimentDefaults {
                    deadline: Some(INSTAGRAM_DEADLINE),
                    samples: 500,
                    budget: 30,
                    quotas: vec![0.0015, 0.002],
                    candidate_pool: Some(INSTAGRAM_CANDIDATE_POOL),
                },
            }),
            Dataset::FacebookSnap => Ok(DatasetBundle {
                dataset: self.clone(),
                name: "facebook-snap",
                description: "surrogate matching the Facebook-SNAP spectral-cluster statistics (p_e = 0.01)",
                graph: fbsnap_surrogate(seed)?,
                defaults: ExperimentDefaults {
                    deadline: Some(FBSNAP_DEADLINE),
                    samples: 200,
                    budget: 30,
                    quotas: vec![0.1],
                    candidate_pool: None,
                },
            }),
            Dataset::Scenario(spec) => {
                let graph = spec.build(seed)?;
                // Generic scenario defaults: the paper's synthetic protocol
                // (τ = 20, 200 samples, the standard quota sweep), with the
                // budget clamped so tiny scenarios stay solvable.
                let budget = 30.min(graph.num_nodes().max(1));
                Ok(DatasetBundle {
                    dataset: self.clone(),
                    name: "scenario",
                    description: "typed synthetic scenario (identity: ScenarioSpec::fingerprint)",
                    graph,
                    defaults: ExperimentDefaults {
                        deadline: Some(20),
                        samples: 200,
                        budget,
                        quotas: vec![0.1, 0.2, 0.3],
                        candidate_pool: None,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::scenario::ScenarioSpec;

    #[test]
    fn every_dataset_builds_and_has_sensible_defaults() {
        let scenario = Dataset::Scenario(ScenarioSpec::watts_strogatz(100, 2, 0.1).unwrap());
        for dataset in [Dataset::Illustrative, Dataset::Synthetic, scenario] {
            let bundle = dataset.build(1).unwrap();
            assert!(bundle.graph.num_nodes() > 0);
            assert!(bundle.defaults.samples > 0);
            assert!(bundle.defaults.budget > 0);
            assert!(!bundle.defaults.quotas.is_empty());
            assert!(!bundle.name.is_empty());
            assert!(!bundle.description.is_empty());
            let p = dataset.default_edge_probability().unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(bundle.dataset, dataset);
        }
    }

    #[test]
    fn scenario_datasets_ride_the_registry_like_named_ones() {
        let spec = ScenarioSpec::sbm(120, 0.08, 0.01).unwrap().with_weighted_cascade();
        let dataset = Dataset::Scenario(spec.clone());
        assert_eq!(dataset.name(), "scenario");
        // Degree-normalized weights have no single nominal probability.
        assert_eq!(dataset.default_edge_probability(), None);
        let bundle = dataset.build(3).unwrap();
        assert_eq!(bundle.graph, spec.build(3).unwrap(), "registry build == direct build");
        assert!(bundle.defaults.budget <= bundle.graph.num_nodes());
        // An invalid literal spec fails at build, naming the field.
        let invalid = Dataset::Scenario(ScenarioSpec {
            num_nodes: 0,
            ..ScenarioSpec::sbm(10, 0.1, 0.1).unwrap()
        });
        let err = invalid.build(1).unwrap_err().to_string();
        assert!(err.contains("'nodes'"), "{err}");
    }

    #[test]
    fn heavier_surrogates_build_too() {
        let rice = Dataset::RiceFacebook.build(2).unwrap();
        assert_eq!(rice.graph.num_nodes(), 1205);
        let snap = Dataset::FacebookSnap.build(2).unwrap();
        assert_eq!(snap.graph.num_nodes(), 4039);
        assert_eq!(snap.graph.num_groups(), 5);
        let insta = Dataset::InstagramActivities.build(2).unwrap();
        assert!(insta.graph.num_nodes() > 50_000);
        assert_eq!(insta.defaults.candidate_pool, Some(5000));
        assert_eq!(Dataset::ALL.len(), 5);
    }
}

//! Error types for graph construction, IO and analysis.

use std::fmt;
use std::io;

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced by an edge or query does not exist in the graph.
    NodeOutOfBounds {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A group id referenced by a query does not exist in the graph.
    GroupOutOfBounds {
        /// The offending group index.
        group: u32,
        /// Number of groups in the graph.
        num_groups: usize,
    },
    /// An edge probability was outside the `[0, 1]` interval.
    InvalidProbability {
        /// The offending probability value.
        value: f64,
    },
    /// The graph would exceed the `u32::MAX` node-count limit.
    TooManyNodes {
        /// Requested node count.
        requested: usize,
    },
    /// A generator or algorithm received an invalid parameter.
    InvalidParameter {
        /// Human-readable description of the parameter problem.
        message: String,
    },
    /// A parse error while reading a graph from a text format.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying IO error while reading or writing a graph file.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds for graph with {num_nodes} nodes")
            }
            GraphError::GroupOutOfBounds { group, num_groups } => {
                write!(f, "group {group} out of bounds for graph with {num_groups} groups")
            }
            GraphError::InvalidProbability { value } => {
                write!(f, "edge probability {value} is not in [0, 1]")
            }
            GraphError::TooManyNodes { requested } => {
                write!(f, "requested {requested} nodes which exceeds the u32 node limit")
            }
            GraphError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(err) => write!(f, "io error: {err}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(err: io::Error) -> Self {
        GraphError::Io(err)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_values() {
        let err = GraphError::NodeOutOfBounds { node: 9, num_nodes: 5 };
        assert!(err.to_string().contains("node 9"));
        assert!(err.to_string().contains("5 nodes"));

        let err = GraphError::InvalidProbability { value: 1.5 };
        assert!(err.to_string().contains("1.5"));

        let err = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let err: GraphError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(matches!(err, GraphError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}

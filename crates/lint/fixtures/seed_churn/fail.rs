// Fixture: inside churn-path functions (refresh / resample / patch /
// mutate) the seed rule additionally demands per-item derivation. Both
// constructions below ARE seed-derived — the base rule is satisfied — but
// they re-seed every resampled item from the bare pool seed, so the
// incremental rebuild replays one stream N times and diverges from a cold
// build.
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

pub fn refresh_sketches(pool_seed: u64, affected: &[u32]) -> u64 {
    let mut acc = 0u64;
    for _sketch in affected {
        let mut rng = SmallRng::seed_from_u64(pool_seed);
        acc ^= rng.next_u64();
    }
    acc
}

pub fn patch_worlds(pool_seed: u64, touched: &[u32]) -> u64 {
    let mut acc = 0u64;
    for _world in touched {
        let stream = pool_seed.wrapping_mul(0x9e37_79b9);
        let mut rng = SmallRng::seed_from_u64(stream);
        acc ^= rng.next_u64();
    }
    acc
}

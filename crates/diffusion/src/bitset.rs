//! A minimal fixed-capacity bitset used to track per-world node coverage.
//!
//! The coverage state of the live-edge estimator needs one bit per node per
//! sampled world; a `Vec<bool>` would waste 8x the memory and the standard
//! library has no bitset, so this small purpose-built type keeps the hot
//! estimator loops compact.

/// Fixed-capacity bitset over `len` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset with `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitset has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        // lint:allow(panic): documented bounds contract — node ids are < len by graph construction
        assert!(index < self.len, "bit index {index} out of range {}", self.len);
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index`, returning `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        // lint:allow(panic): documented bounds contract — node ids are < len by graph construction
        assert!(index < self.len, "bit index {index} out of range {}", self.len);
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let was_clear = *word & mask == 0;
        *word |= mask;
        was_clear
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            (0..64).filter_map(move |b| {
                let idx = wi * 64 + b;
                if idx < self.len && (word >> b) & 1 == 1 {
                    Some(idx)
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut b = BitSet::new(100);
        assert_eq!(b.len(), 100);
        assert!(!b.contains(63));
        assert!(b.insert(63));
        assert!(!b.insert(63));
        assert!(b.contains(63));
        assert!(b.insert(64));
        assert!(b.insert(99));
        assert_eq!(b.count(), 3);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![63, 64, 99]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = BitSet::new(10);
        b.insert(3);
        b.insert(7);
        b.clear();
        assert_eq!(b.count(), 0);
        assert!(!b.contains(3));
    }

    #[test]
    fn zero_length_bitset_is_empty() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let b = BitSet::new(5);
        b.contains(5);
    }
}

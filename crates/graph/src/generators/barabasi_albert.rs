//! Barabási–Albert preferential-attachment generator with group-biased
//! attachment.
//!
//! Scale-free degree distributions concentrate connectivity on a few hubs; if
//! hubs are predominantly drawn from the majority group this produces exactly
//! the "majority group is better connected and more central" condition the
//! paper identifies as a driver of disparity. The generator lets tests and
//! ablation benches dial that bias via `minority_fraction` and
//! `homophily_bias`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::{GroupId, NodeId};

/// Configuration for the Barabási–Albert generator.
#[derive(Debug, Clone)]
pub struct BarabasiAlbertConfig {
    /// Total number of nodes (must be at least `edges_per_node + 1`).
    pub num_nodes: usize,
    /// Number of undirected ties each arriving node creates.
    pub edges_per_node: usize,
    /// Fraction of nodes assigned to the minority group (group 1).
    pub minority_fraction: f64,
    /// Multiplier applied to the attachment weight of same-group targets;
    /// `1.0` is the classic unbiased model, larger values increase homophily.
    pub homophily_bias: f64,
    /// Activation probability assigned to every edge.
    pub edge_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Samples a group-labelled Barabási–Albert graph.
///
/// # Errors
///
/// Returns an error on invalid probabilities, a zero `edges_per_node`, or a
/// node count too small to seed the attachment process.
pub fn barabasi_albert(config: &BarabasiAlbertConfig) -> Result<Graph> {
    if config.edges_per_node == 0 {
        return Err(GraphError::InvalidParameter {
            message: "edges_per_node must be at least 1".to_string(),
        });
    }
    if config.num_nodes <= config.edges_per_node {
        return Err(GraphError::InvalidParameter {
            message: format!(
                "num_nodes ({}) must exceed edges_per_node ({})",
                config.num_nodes, config.edges_per_node
            ),
        });
    }
    if !(0.0..=1.0).contains(&config.minority_fraction) || config.minority_fraction.is_nan() {
        return Err(GraphError::InvalidParameter {
            message: format!("minority_fraction {} is not in [0, 1]", config.minority_fraction),
        });
    }
    if config.homophily_bias <= 0.0 || config.homophily_bias.is_nan() {
        return Err(GraphError::InvalidParameter {
            message: format!("homophily_bias {} must be positive", config.homophily_bias),
        });
    }
    if !(0.0..=1.0).contains(&config.edge_probability) || config.edge_probability.is_nan() {
        return Err(GraphError::InvalidProbability { value: config.edge_probability });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_nodes;
    let m = config.edges_per_node;

    // Assign groups up front so attachment can be group-biased.
    let groups: Vec<GroupId> = (0..n)
        .map(|_| if rng.random_bool(config.minority_fraction) { GroupId(1) } else { GroupId(0) })
        .collect();

    let mut builder = GraphBuilder::with_capacity(n, 2 * n * m);
    for &g in &groups {
        builder.add_node(g);
    }

    // Degree-proportional attachment with a homophily multiplier. Weights are
    // recomputed per arriving node; the evaluation graphs are small enough
    // that the O(n²) loop is irrelevant next to influence estimation.
    let mut degree = vec![0usize; n];

    // Seed clique over the first m + 1 nodes.
    for u in 0..=m {
        for v in (u + 1)..=m {
            builder.add_undirected_edge(
                NodeId::from_index(u),
                NodeId::from_index(v),
                config.edge_probability,
            )?;
            degree[u] += 1;
            degree[v] += 1;
        }
    }

    for new in (m + 1)..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        for _ in 0..m {
            let total: f64 = (0..new)
                .filter(|t| !chosen.contains(t))
                .map(|t| {
                    attachment_weight(degree[t], groups[new] == groups[t], config.homophily_bias)
                })
                .sum();
            if total <= 0.0 {
                break;
            }
            let mut pick = rng.random::<f64>() * total;
            let mut selected = None;
            for t in 0..new {
                if chosen.contains(&t) {
                    continue;
                }
                pick -=
                    attachment_weight(degree[t], groups[new] == groups[t], config.homophily_bias);
                if pick <= 0.0 {
                    selected = Some(t);
                    break;
                }
            }
            let target = selected.unwrap_or(new - 1);
            chosen.push(target);
        }
        for &target in &chosen {
            builder.add_undirected_edge(
                NodeId::from_index(new),
                NodeId::from_index(target),
                config.edge_probability,
            )?;
            degree[new] += 1;
            degree[target] += 1;
        }
    }

    builder.build()
}

#[inline]
fn attachment_weight(degree: usize, same_group: bool, bias: f64) -> f64 {
    let base = degree as f64 + 1.0;
    if same_group {
        base * bias
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centrality::degree_centrality;
    use crate::stats::graph_stats;

    fn base_config() -> BarabasiAlbertConfig {
        BarabasiAlbertConfig {
            num_nodes: 150,
            edges_per_node: 3,
            minority_fraction: 0.3,
            homophily_bias: 1.0,
            edge_probability: 0.1,
            seed: 21,
        }
    }

    #[test]
    fn produces_a_connected_scale_free_graph() {
        let g = barabasi_albert(&base_config()).unwrap();
        assert_eq!(g.num_nodes(), 150);
        // Roughly m edges per arriving node plus the seed clique.
        assert!(g.num_edges() >= 2 * 3 * (150 - 4));
        let deg = degree_centrality(&g);
        let max = deg.iter().cloned().fold(0.0f64, f64::max);
        let mean = deg.iter().sum::<f64>() / deg.len() as f64;
        assert!(max > 3.0 * mean, "expected hubs, max {max} mean {mean}");
        assert_eq!(crate::traversal::largest_component_size(&g), 150);
    }

    #[test]
    fn homophily_bias_increases_assortativity() {
        let neutral = graph_stats(&barabasi_albert(&base_config()).unwrap());
        let mut biased_cfg = base_config();
        biased_cfg.homophily_bias = 8.0;
        let biased = graph_stats(&barabasi_albert(&biased_cfg).unwrap());
        assert!(biased.assortativity > neutral.assortativity);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = base_config();
        assert_eq!(barabasi_albert(&cfg).unwrap(), barabasi_albert(&cfg).unwrap());
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut cfg = base_config();
        cfg.edges_per_node = 0;
        assert!(barabasi_albert(&cfg).is_err());
        let mut cfg = base_config();
        cfg.num_nodes = 2;
        assert!(barabasi_albert(&cfg).is_err());
        let mut cfg = base_config();
        cfg.minority_fraction = 1.5;
        assert!(barabasi_albert(&cfg).is_err());
        let mut cfg = base_config();
        cfg.homophily_bias = 0.0;
        assert!(barabasi_albert(&cfg).is_err());
        let mut cfg = base_config();
        cfg.edge_probability = 1.2;
        assert!(barabasi_albert(&cfg).is_err());
    }
}

//! Greedy submodular cover: select the smallest set whose objective value
//! reaches a target.
//!
//! This is the solver behind the TCIM-COVER (P2) and FAIRTCIM-COVER (P6)
//! problems: the objective is the (truncated, possibly per-group) coverage
//! potential, and the target is `Q` (resp. `k · Q`). Wolsey's analysis gives
//! the `ln(1 + |V|)`-style multiplicative bound on the selected set size
//! quoted in Section 3.4 and Theorem 2 of the paper.

use crate::error::{Result, SubmodularError};
use crate::function::IncrementalObjective;
use crate::trace::{CoverResult, SelectionTrace};

/// Configuration of the greedy cover solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverConfig {
    /// Target objective value to reach.
    pub target: f64,
    /// Numerical slack: the run stops once `value ≥ target − tolerance`.
    /// Useful because Monte-Carlo objectives only approximate the true value.
    pub tolerance: f64,
    /// Hard cap on the number of selected items (defaults to the ground-set
    /// size when `None`).
    pub max_items: Option<usize>,
}

impl CoverConfig {
    /// Creates a configuration with the given target, zero tolerance and no
    /// item cap.
    pub fn new(target: f64) -> Self {
        CoverConfig { target, tolerance: 0.0, max_items: None }
    }
}

/// Greedily selects items from `ground` until the objective value reaches the
/// target (within tolerance), the ground set is exhausted, the item cap is
/// hit, or no remaining item has positive gain.
///
/// The returned [`CoverResult::reached`] flag records whether the target was
/// met; an unreachable target is *not* an error because the experiment
/// harness deliberately probes infeasible quotas.
///
/// # Errors
///
/// Returns an error if `ground` is empty or the target is negative / NaN.
pub fn cover_greedy<O: IncrementalObjective>(
    objective: &mut O,
    ground: &[usize],
    config: &CoverConfig,
) -> Result<CoverResult> {
    if ground.is_empty() {
        return Err(SubmodularError::EmptyGroundSet);
    }
    if config.target < 0.0 || config.target.is_nan() {
        return Err(SubmodularError::InvalidParameter {
            message: format!("cover target {} must be non-negative", config.target),
        });
    }
    if config.tolerance < 0.0 || config.tolerance.is_nan() {
        return Err(SubmodularError::InvalidParameter {
            message: format!("tolerance {} must be non-negative", config.tolerance),
        });
    }

    let mut remaining: Vec<usize> = ground.to_vec();
    remaining.sort_unstable();
    remaining.dedup();
    let max_items = config.max_items.unwrap_or(remaining.len());

    let mut trace = SelectionTrace::default();
    let threshold = config.target - config.tolerance;

    while objective.current_value() < threshold && trace.len() < max_items && !remaining.is_empty()
    {
        let mut best: Option<(usize, f64)> = None; // (position, gain)
        for (pos, &item) in remaining.iter().enumerate() {
            let gain = objective.gain(item);
            trace.gain_evaluations += 1;
            // Ties break towards the smallest item id, matching the greedy and
            // lazy-greedy maximizers.
            let better = match best {
                None => true,
                Some((best_pos, best_gain)) => {
                    gain > best_gain || (gain == best_gain && item < remaining[best_pos])
                }
            };
            if better {
                best = Some((pos, gain));
            }
        }
        match best {
            Some((pos, gain)) if gain > 0.0 => {
                let item = remaining.swap_remove(pos);
                objective.insert(item);
                trace.push(item, gain, objective.current_value());
            }
            _ => break,
        }
    }

    let reached = objective.current_value() >= threshold;
    Ok(CoverResult { trace, reached, target: config.target })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{ModularFunction, WeightedCoverage};

    #[test]
    fn covers_the_target_with_a_small_set() {
        let mut f = WeightedCoverage::uniform(
            vec![vec![0, 1, 2, 3], vec![4, 5], vec![6], vec![0, 4, 6]],
            7,
        );
        let result = cover_greedy(&mut f, &[0, 1, 2, 3], &CoverConfig::new(6.0)).unwrap();
        assert!(result.reached);
        assert!(result.achieved() >= 6.0);
        assert!(result.seed_count() <= 3);
    }

    #[test]
    fn reports_unreachable_targets_without_erroring() {
        let mut f = WeightedCoverage::uniform(vec![vec![0], vec![1]], 5);
        let result = cover_greedy(&mut f, &[0, 1], &CoverConfig::new(4.0)).unwrap();
        assert!(!result.reached);
        assert_eq!(result.achieved(), 2.0);
        assert_eq!(result.seed_count(), 2);
        assert_eq!(result.target, 4.0);
    }

    #[test]
    fn zero_target_selects_nothing() {
        let mut f = ModularFunction::new(vec![1.0, 1.0]);
        let result = cover_greedy(&mut f, &[0, 1], &CoverConfig::new(0.0)).unwrap();
        assert!(result.reached);
        assert_eq!(result.seed_count(), 0);
    }

    #[test]
    fn tolerance_allows_stopping_slightly_early() {
        let mut f = ModularFunction::new(vec![1.0, 1.0, 1.0]);
        let config = CoverConfig { target: 2.05, tolerance: 0.1, max_items: None };
        let result = cover_greedy(&mut f, &[0, 1, 2], &config).unwrap();
        assert!(result.reached);
        assert_eq!(result.seed_count(), 2);
    }

    #[test]
    fn max_items_caps_the_selection() {
        let mut f = ModularFunction::new(vec![1.0; 10]);
        let config = CoverConfig { target: 10.0, tolerance: 0.0, max_items: Some(3) };
        let result = cover_greedy(&mut f, &(0..10).collect::<Vec<_>>(), &config).unwrap();
        assert!(!result.reached);
        assert_eq!(result.seed_count(), 3);
    }

    #[test]
    fn wolsey_style_bound_holds_on_coverage_instances() {
        // Universe of 12 elements; optimal cover of the 0.9 * 12 target needs
        // 2 sets; greedy must stay within ln(1 + 12) * 2 ≈ 5.1 sets.
        let covers = vec![
            vec![0, 1, 2, 3, 4, 5],
            vec![6, 7, 8, 9, 10, 11],
            vec![0, 6],
            vec![1, 7],
            vec![2, 8],
            vec![3, 9],
        ];
        let mut f = WeightedCoverage::uniform(covers, 12);
        let result = cover_greedy(&mut f, &[0, 1, 2, 3, 4, 5], &CoverConfig::new(11.0)).unwrap();
        assert!(result.reached);
        let bound = ((1.0 + 12.0f64).ln() * 2.0).ceil() as usize;
        assert!(result.seed_count() <= bound);
    }

    #[test]
    fn invalid_inputs_error() {
        let mut f = ModularFunction::new(vec![1.0]);
        assert!(cover_greedy(&mut f, &[], &CoverConfig::new(1.0)).is_err());
        assert!(cover_greedy(&mut f, &[0], &CoverConfig::new(-1.0)).is_err());
        let bad_tol = CoverConfig { target: 1.0, tolerance: -0.5, max_items: None };
        assert!(cover_greedy(&mut f, &[0], &bad_tol).is_err());
    }
}

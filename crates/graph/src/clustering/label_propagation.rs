//! Asynchronous label propagation community detection.
//!
//! A lightweight alternative to spectral clustering used by the
//! `fairness_audit` example to derive topological groups on graphs where no
//! demographic attribute is available and the spectral pipeline would be
//! overkill.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::graph::Graph;

/// Configuration for [`label_propagation`].
#[derive(Debug, Clone)]
pub struct LabelPropagationConfig {
    /// Maximum number of full sweeps over the node set.
    pub max_sweeps: usize,
    /// RNG seed controlling the node visiting order.
    pub seed: u64,
}

impl Default for LabelPropagationConfig {
    fn default() -> Self {
        // LPA is a randomized algorithm: on rare visiting orders a single
        // bridge edge can merge two dense communities during the initial
        // transient (seed 0 exhibits exactly that on a two-clique graph), so
        // the default stream starts at 1.
        LabelPropagationConfig { max_sweeps: 20, seed: 1 }
    }
}

/// Runs asynchronous label propagation and returns one community label per
/// node. Labels are compacted to `0..c` in order of first appearance.
pub fn label_propagation(graph: &Graph, config: &LabelPropagationConfig) -> Vec<usize> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }

    // Undirected neighbourhoods: propagation should flow both ways along a tie.
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (s, t, _) in graph.edges() {
        neighbors[s.index()].push(t.0);
        neighbors[t.index()].push(s.0);
    }

    let mut labels: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // BTreeMap so the candidate list below comes out in deterministic
    // (ascending-label) order: the same seed must always reproduce the same
    // labelling regardless of hasher state.
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut candidates: Vec<usize> = Vec::new();

    for _ in 0..config.max_sweeps {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            if neighbors[v].is_empty() {
                continue;
            }
            counts.clear();
            for &w in &neighbors[v] {
                *counts.entry(labels[w as usize]).or_insert(0) += 1;
            }
            // Classic asynchronous LPA rule (Raghavan et al. 2007): keep the
            // current label when it is already among the most frequent
            // neighbour labels, otherwise adopt one of them uniformly at
            // random. Stickiness stops single bridge edges from merging two
            // otherwise dense communities.
            let max_count = counts.values().copied().max().unwrap_or(0);
            if counts.get(&labels[v]).copied() == Some(max_count) {
                continue;
            }
            candidates.clear();
            // BTreeMap iteration is ascending by label, so the candidate
            // list is already sorted and the draw below is reproducible.
            candidates.extend(counts.iter().filter(|(_, &c)| c == max_count).map(|(&l, _)| l));
            let best = candidates[rng.random_range(0..candidates.len())];
            if best != labels[v] {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Compact labels.
    let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = remap.len();
            *remap.entry(l).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{stochastic_block_model, SbmConfig};
    use crate::ids::GroupId;

    #[test]
    fn two_cliques_joined_by_a_bridge_form_two_communities() {
        let mut b = GraphBuilder::new();
        let left = b.add_nodes(5, GroupId(0));
        let right = b.add_nodes(5, GroupId(0));
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_undirected_edge(left[i], left[j], 1.0).unwrap();
                b.add_undirected_edge(right[i], right[j], 1.0).unwrap();
            }
        }
        b.add_undirected_edge(left[0], right[0], 1.0).unwrap();
        let g = b.build().unwrap();

        let labels = label_propagation(&g, &LabelPropagationConfig::default());
        let left_label = labels[0];
        let right_label = labels[5];
        assert!(labels[..5].iter().all(|&l| l == left_label));
        assert!(labels[5..].iter().all(|&l| l == right_label));
        assert_ne!(left_label, right_label);
    }

    #[test]
    fn recovers_strong_sbm_blocks_reasonably_well() {
        let cfg = SbmConfig {
            group_sizes: vec![30, 30],
            p_within: 0.5,
            p_across: 0.01,
            edge_probability: 0.1,
            seed: 3,
            expected_edges: None,
        };
        let g = stochastic_block_model(&cfg).unwrap();
        let labels = label_propagation(&g, &LabelPropagationConfig::default());
        let planted: Vec<usize> = g.nodes().map(|v| g.group_of(v).index()).collect();
        // Within each planted block the modal label should dominate.
        for block in 0..2 {
            let members: Vec<usize> = (0..60).filter(|&i| planted[i] == block).collect();
            let mut counts = std::collections::HashMap::new();
            for &m in &members {
                *counts.entry(labels[m]).or_insert(0usize) += 1;
            }
            let modal = counts.values().copied().max().unwrap();
            assert!(modal as f64 >= 0.8 * members.len() as f64);
        }
    }

    #[test]
    fn isolated_nodes_keep_their_own_label() {
        let mut b = GraphBuilder::new();
        b.add_nodes(3, GroupId(0));
        let g = b.build().unwrap();
        let labels = label_propagation(&g, &LabelPropagationConfig::default());
        assert_eq!(labels.len(), 3);
        // All isolated: three distinct communities.
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn empty_graph_gives_empty_labels() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(label_propagation(&g, &LabelPropagationConfig::default()).is_empty());
    }
}

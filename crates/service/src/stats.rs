//! Serving-tier observability: lock-cheap request/latency/connection
//! counters aggregated by [`ServerStats`] and snapshotted on demand.
//!
//! Every counter is a plain atomic — recording a request is a handful of
//! `fetch_add`s plus one histogram bucket increment, cheap enough to sit on
//! the hot serving path of every response. Latencies go into per-op
//! power-of-two histograms ([`LatencyHistogram`]), so p50/p99 come out of a
//! 40-bucket walk instead of a sorted sample buffer.
//!
//! A [`StatsSnapshot`] is the *typed* read side: the `{"op":"stats"}` wire
//! operation renders one as JSON (see [`StatsSnapshot::fields`]), and the
//! server logs one line ([`StatsSnapshot::summary_line`]) on shutdown. The
//! snapshot is telemetry, not protocol state: it depends on load, timing and
//! cache temperature by design, which is exactly why it lives beside — not
//! inside — the deterministic query responses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::cache::{CacheStats, ShardStats};
use crate::minijson::Json;
use crate::protocol::Op;

/// The fixed set of wire operations the stats layer tracks, in the order
/// they render in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `solve_budget` requests (P1 / P3 / P4).
    SolveBudget,
    /// `solve_cover` requests (P2 / P5 / P6).
    SolveCover,
    /// `audit` requests.
    Audit,
    /// `estimate` requests.
    Estimate,
    /// `mutate` requests (graph churn).
    Mutate,
    /// `stats` requests (yes, asking for stats is itself counted).
    Stats,
    /// `ping` requests.
    Ping,
    /// `shutdown` requests.
    Shutdown,
}

impl OpKind {
    /// Every kind, in snapshot render order.
    pub const ALL: [OpKind; 8] = [
        OpKind::SolveBudget,
        OpKind::SolveCover,
        OpKind::Audit,
        OpKind::Estimate,
        OpKind::Mutate,
        OpKind::Stats,
        OpKind::Ping,
        OpKind::Shutdown,
    ];

    /// The protocol name (matches [`Op::label`]).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::SolveBudget => "solve_budget",
            OpKind::SolveCover => "solve_cover",
            OpKind::Audit => "audit",
            OpKind::Estimate => "estimate",
            OpKind::Mutate => "mutate",
            OpKind::Stats => "stats",
            OpKind::Ping => "ping",
            OpKind::Shutdown => "shutdown",
        }
    }

    /// The stats bucket a parsed operation belongs to.
    pub fn of(op: &Op) -> OpKind {
        match op {
            Op::Solve(spec) => match spec.objective {
                tcim_core::Objective::Budget { .. } => OpKind::SolveBudget,
                tcim_core::Objective::Cover { .. } => OpKind::SolveCover,
            },
            Op::Audit { .. } => OpKind::Audit,
            Op::Estimate { .. } => OpKind::Estimate,
            Op::Mutate { .. } => OpKind::Mutate,
            Op::Stats => OpKind::Stats,
            Op::Ping => OpKind::Ping,
            Op::Shutdown => OpKind::Shutdown,
        }
    }

    fn index(self) -> usize {
        // lint:allow(panic): OpKind::ALL enumerates every variant of this non-exhaustive-proof enum
        OpKind::ALL.iter().position(|k| *k == self).expect("OpKind::ALL covers every kind")
    }
}

/// Number of power-of-two latency buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` microseconds, so 40 buckets span 1 µs to ~12 days.
const BUCKETS: usize = 40;

/// A fixed-size power-of-two latency histogram over microseconds.
///
/// Recording is one atomic increment; quantiles are read by walking the
/// bucket counts and reporting the matched bucket's inclusive upper bound
/// (`2^(i+1) - 1` µs) — a conservative estimate whose resolution tracks
/// magnitude, which is what p50/p99 dashboards actually need.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // A `const` item is promoted per array slot (the usual trick for
        // arrays of non-`Copy` atomics).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHistogram { buckets: [ZERO; BUCKETS] }
    }

    fn bucket_index(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the bucket counts (a relaxed, non-atomic-across-buckets view —
    /// fine for telemetry).
    pub fn counts(&self) -> [u64; BUCKETS] {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        counts
    }
}

/// The inclusive upper bound (µs) of bucket `i`.
fn bucket_upper_bound_us(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// The `q`-quantile (`0 < q <= 1`) of a bucket-count array, as the upper
/// bound of the bucket holding the target observation; `None` when empty.
fn quantile_us(counts: &[u64; BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    // ceil(q * total), clamped to [1, total]: the rank of the target sample.
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= target {
            return Some(bucket_upper_bound_us(i));
        }
    }
    Some(bucket_upper_bound_us(BUCKETS - 1))
}

#[derive(Default)]
struct OpCounters {
    count: AtomicU64,
    errors: AtomicU64,
    histogram: LatencyHistogram,
}

/// Lock-cheap aggregator of serving metrics: per-op request counts and
/// latency histograms, parse-failure counts, in-flight/connection gauges.
///
/// One instance lives inside every [`ServiceEngine`](crate::ServiceEngine)
/// (which records each served request) and is shared with the socket
/// [`Server`](crate::server::Server) (which records connection lifecycle).
/// All methods take `&self` and are safe to call from any thread.
pub struct ServerStats {
    start: Instant,
    ops: [OpCounters; OpKind::ALL.len()],
    parse_errors: AtomicU64,
    inflight: AtomicU64,
    peak_inflight: AtomicU64,
    active_connections: AtomicU64,
    peak_connections: AtomicU64,
    total_connections: AtomicU64,
    rejected_connections: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    /// A zeroed aggregator; uptime counts from this moment.
    pub fn new() -> Self {
        ServerStats {
            start: Instant::now(),
            ops: Default::default(),
            parse_errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            peak_inflight: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            total_connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
        }
    }

    /// Marks a request in flight (bumps the gauge and its peak).
    pub fn request_started(&self) {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_inflight.fetch_max(now, Ordering::Relaxed);
    }

    /// Marks a request finished, recording its op, outcome and latency.
    pub fn request_finished(&self, op: OpKind, ok: bool, latency: Duration) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        let counters = &self.ops[op.index()];
        counters.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        counters.histogram.record(latency);
    }

    /// Records a line that never became a request (malformed JSON or an
    /// invalid field set).
    pub fn record_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted connection (bumps active/peak/total).
    pub fn connection_opened(&self) {
        let now = self.active_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
        self.total_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a connection turned away by the `max_connections` cap.
    pub fn connection_rejected(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot joined with the cache's hit/miss/budget
    /// counters and its per-shard breakdown.
    pub fn snapshot(&self, cache: CacheStats, shards: Vec<ShardStats>) -> StatsSnapshot {
        let mut per_op = Vec::new();
        let mut merged = [0u64; BUCKETS];
        let mut total = 0u64;
        let mut errors = 0u64;
        for kind in OpKind::ALL {
            let counters = &self.ops[kind.index()];
            let count = counters.count.load(Ordering::Relaxed);
            let counts = counters.histogram.counts();
            for (slot, c) in merged.iter_mut().zip(&counts) {
                *slot += c;
            }
            total += count;
            let op_errors = counters.errors.load(Ordering::Relaxed);
            errors += op_errors;
            if count > 0 {
                per_op.push(OpSnapshot {
                    op: kind.label(),
                    count,
                    errors: op_errors,
                    p50_us: quantile_us(&counts, 0.50),
                    p99_us: quantile_us(&counts, 0.99),
                });
            }
        }
        StatsSnapshot {
            uptime_ms: self.start.elapsed().as_secs_f64() * 1e3,
            total_requests: total,
            total_errors: errors,
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            p50_us: quantile_us(&merged, 0.50),
            p99_us: quantile_us(&merged, 0.99),
            per_op,
            inflight: self.inflight.load(Ordering::Relaxed),
            peak_inflight: self.peak_inflight.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            total_connections: self.total_connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            cache,
            shards,
        }
    }
}

/// One operation's slice of a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Protocol op name.
    pub op: &'static str,
    /// Requests served (successes and failures).
    pub count: u64,
    /// Requests answered `"ok": false`.
    pub errors: u64,
    /// Median latency (µs, bucket upper bound); `None` when `count` is 0.
    pub p50_us: Option<u64>,
    /// 99th-percentile latency (µs, bucket upper bound).
    pub p99_us: Option<u64>,
}

/// A typed point-in-time view of a [`ServerStats`], as returned by the
/// `{"op":"stats"}` wire operation.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Milliseconds since the engine was created.
    pub uptime_ms: f64,
    /// Requests served across all ops.
    pub total_requests: u64,
    /// Requests answered `"ok": false`.
    pub total_errors: u64,
    /// Lines that never parsed into a request.
    pub parse_errors: u64,
    /// Median latency across all ops (µs).
    pub p50_us: Option<u64>,
    /// 99th-percentile latency across all ops (µs).
    pub p99_us: Option<u64>,
    /// Per-op breakdown (ops with at least one request, in fixed order).
    pub per_op: Vec<OpSnapshot>,
    /// Requests currently executing.
    pub inflight: u64,
    /// High-water mark of `inflight`.
    pub peak_inflight: u64,
    /// Open connections right now (0 in batch mode).
    pub active_connections: u64,
    /// High-water mark of open connections.
    pub peak_connections: u64,
    /// Connections accepted over the server's lifetime.
    pub total_connections: u64,
    /// Connections turned away by the `max_connections` cap.
    pub rejected_connections: u64,
    /// The oracle cache's hit/miss and budget counters.
    pub cache: CacheStats,
    /// The cache's per-shard budget breakdown, in shard order.
    pub shards: Vec<ShardStats>,
}

fn opt_us(us: Option<u64>) -> Json {
    match us {
        Some(us) => Json::Num(us as f64),
        None => Json::Null,
    }
}

fn rate(hits: u64, misses: u64) -> Json {
    let total = hits + misses;
    if total == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / total as f64)
    }
}

impl StatsSnapshot {
    /// Renders the snapshot as the result fields of a `stats` response.
    pub fn fields(&self) -> Vec<(String, Json)> {
        let per_op: Vec<(String, Json)> = self
            .per_op
            .iter()
            .map(|op| {
                (
                    op.op.to_string(),
                    Json::Obj(vec![
                        ("count".into(), Json::Num(op.count as f64)),
                        ("errors".into(), Json::Num(op.errors as f64)),
                        ("p50_us".into(), opt_us(op.p50_us)),
                        ("p99_us".into(), opt_us(op.p99_us)),
                    ]),
                )
            })
            .collect();
        let cache = &self.cache;
        vec![
            ("uptime_ms".into(), Json::Num(self.uptime_ms)),
            (
                "requests".into(),
                Json::Obj(vec![
                    ("total".into(), Json::Num(self.total_requests as f64)),
                    ("errors".into(), Json::Num(self.total_errors as f64)),
                    ("parse_errors".into(), Json::Num(self.parse_errors as f64)),
                    ("p50_us".into(), opt_us(self.p50_us)),
                    ("p99_us".into(), opt_us(self.p99_us)),
                    ("per_op".into(), Json::Obj(per_op)),
                ]),
            ),
            ("inflight".into(), Json::Num(self.inflight as f64)),
            ("peak_inflight".into(), Json::Num(self.peak_inflight as f64)),
            (
                "connections".into(),
                Json::Obj(vec![
                    ("active".into(), Json::Num(self.active_connections as f64)),
                    ("peak".into(), Json::Num(self.peak_connections as f64)),
                    ("total".into(), Json::Num(self.total_connections as f64)),
                    ("rejected".into(), Json::Num(self.rejected_connections as f64)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    (
                        "oracles".into(),
                        Json::Obj(vec![
                            ("hits".into(), Json::Num(cache.oracle_hits as f64)),
                            ("misses".into(), Json::Num(cache.oracle_misses as f64)),
                            ("hit_rate".into(), rate(cache.oracle_hits, cache.oracle_misses)),
                        ]),
                    ),
                    (
                        "worlds".into(),
                        Json::Obj(vec![
                            ("hits".into(), Json::Num(cache.world_hits as f64)),
                            ("misses".into(), Json::Num(cache.world_misses as f64)),
                            ("hit_rate".into(), rate(cache.world_hits, cache.world_misses)),
                        ]),
                    ),
                    (
                        "graphs".into(),
                        Json::Obj(vec![
                            ("hits".into(), Json::Num(cache.graph_hits as f64)),
                            ("misses".into(), Json::Num(cache.graph_misses as f64)),
                        ]),
                    ),
                    (
                        "lt".into(),
                        Json::Obj(vec![
                            ("hits".into(), Json::Num(cache.lt_hits as f64)),
                            ("misses".into(), Json::Num(cache.lt_misses as f64)),
                        ]),
                    ),
                    // Dynamic-graph telemetry: how often solves rode the
                    // incremental refresh/patch paths instead of cold builds.
                    (
                        "churn".into(),
                        Json::Obj(vec![
                            ("mutations".into(), Json::Num(cache.mutations as f64)),
                            ("ris_refreshes".into(), Json::Num(cache.ris_refreshes as f64)),
                            ("world_patches".into(), Json::Num(cache.world_patches as f64)),
                        ]),
                    ),
                    // Aggregate budget figures render before the per-shard
                    // array, so a flat text scan finds the totals first.
                    ("bytes_used".into(), Json::Num(cache.bytes_used as f64)),
                    ("bytes_budget".into(), Json::Num(cache.bytes_budget as f64)),
                    ("evictions".into(), Json::Num(cache.evictions as f64)),
                    (
                        "shards".into(),
                        Json::Arr(
                            self.shards
                                .iter()
                                .map(|shard| {
                                    Json::Obj(vec![
                                        ("bytes_used".into(), Json::Num(shard.bytes_used as f64)),
                                        (
                                            "bytes_budget".into(),
                                            Json::Num(shard.bytes_budget as f64),
                                        ),
                                        ("peak_bytes".into(), Json::Num(shard.peak_bytes as f64)),
                                        ("evictions".into(), Json::Num(shard.evictions as f64)),
                                        ("entries".into(), Json::Num(shard.entries as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ]
    }

    /// One human-readable line — what the server logs at shutdown and what
    /// `tcim_serve` prints after a batch.
    pub fn summary_line(&self) -> String {
        let fmt_us = |us: Option<u64>| match us {
            Some(us) => format!("{us}us"),
            None => "-".to_string(),
        };
        format!(
            "served {} request(s) ({} failed, {} unparsable): p50 {} p99 {}; oracle cache {} \
             hit(s) / {} miss(es), world pool {} hit(s) / {} miss(es), {}/{} cache byte(s) used, \
             {} eviction(s); connections {} total, peak {}, {} rejected; peak in-flight {}",
            self.total_requests,
            self.total_errors,
            self.parse_errors,
            fmt_us(self.p50_us),
            fmt_us(self.p99_us),
            self.cache.oracle_hits,
            self.cache.oracle_misses,
            self.cache.world_hits,
            self.cache.world_misses,
            self.cache.bytes_used,
            self.cache.bytes_budget,
            self.cache.evictions,
            self.total_connections,
            self.peak_connections,
            self.rejected_connections,
            self.peak_inflight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude_and_quantiles_walk_upward() {
        let h = LatencyHistogram::new();
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);

        // 99 fast observations and one slow one: p50 stays in the fast
        // bucket, p99 lands in the slow one.
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_micros(100_000)); // bucket 16
        let counts = h.counts();
        assert_eq!(quantile_us(&counts, 0.50), Some(127));
        assert_eq!(quantile_us(&counts, 0.99), Some(127));
        assert_eq!(quantile_us(&counts, 1.0), Some(131_071));
        assert_eq!(quantile_us(&[0; BUCKETS], 0.5), None);
    }

    #[test]
    fn records_roll_up_into_snapshots() {
        let stats = ServerStats::new();
        stats.request_started();
        stats.request_started();
        stats.request_finished(OpKind::SolveBudget, true, Duration::from_micros(80));
        stats.request_finished(OpKind::SolveBudget, false, Duration::from_micros(80));
        stats.request_started();
        stats.request_finished(OpKind::Ping, true, Duration::from_micros(1));
        stats.record_parse_error();
        stats.connection_opened();
        stats.connection_opened();
        stats.connection_closed();
        stats.connection_rejected();

        let snap = stats.snapshot(
            CacheStats {
                oracle_hits: 3,
                oracle_misses: 1,
                lt_hits: 2,
                lt_misses: 1,
                mutations: 2,
                ris_refreshes: 4,
                world_patches: 3,
                bytes_used: 300,
                bytes_budget: 1024,
                evictions: 5,
                ..Default::default()
            },
            vec![
                ShardStats {
                    bytes_used: 300,
                    bytes_budget: 512,
                    peak_bytes: 400,
                    evictions: 5,
                    entries: 2,
                },
                ShardStats { bytes_budget: 512, ..Default::default() },
            ],
        );
        assert_eq!(snap.total_requests, 3);
        assert_eq!(snap.total_errors, 1);
        assert_eq!(snap.parse_errors, 1);
        assert_eq!(snap.inflight, 0);
        assert_eq!(snap.peak_inflight, 2);
        assert_eq!(snap.active_connections, 1);
        assert_eq!(snap.peak_connections, 2);
        assert_eq!(snap.total_connections, 2);
        assert_eq!(snap.rejected_connections, 1);
        // Only ops that saw traffic appear, in fixed order.
        let ops: Vec<&str> = snap.per_op.iter().map(|o| o.op).collect();
        assert_eq!(ops, vec!["solve_budget", "ping"]);
        assert_eq!(snap.per_op[0].count, 2);
        assert_eq!(snap.per_op[0].errors, 1);
        assert!(snap.per_op[0].p50_us.is_some());

        // The JSON rendering carries the acceptance-critical fields.
        let json = Json::Obj(snap.fields());
        assert_eq!(
            json.get("cache").unwrap().get("oracles").unwrap().get("hit_rate").unwrap().as_f64(),
            Some(0.75)
        );
        let cache = json.get("cache").unwrap();
        assert_eq!(cache.get("lt").unwrap().get("hits").unwrap().as_f64(), Some(2.0));
        assert_eq!(cache.get("lt").unwrap().get("misses").unwrap().as_f64(), Some(1.0));
        let churn = cache.get("churn").unwrap();
        assert_eq!(churn.get("mutations").unwrap().as_f64(), Some(2.0));
        assert_eq!(churn.get("ris_refreshes").unwrap().as_f64(), Some(4.0));
        assert_eq!(churn.get("world_patches").unwrap().as_f64(), Some(3.0));
        assert_eq!(cache.get("bytes_used").unwrap().as_f64(), Some(300.0));
        assert_eq!(cache.get("bytes_budget").unwrap().as_f64(), Some(1024.0));
        assert_eq!(cache.get("evictions").unwrap().as_f64(), Some(5.0));
        let Some(Json::Arr(shards)) = cache.get("shards") else {
            panic!("shards must render as an array");
        };
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("peak_bytes").unwrap().as_f64(), Some(400.0));
        assert_eq!(shards[1].get("bytes_budget").unwrap().as_f64(), Some(512.0));
        assert_eq!(shards[1].get("entries").unwrap().as_f64(), Some(0.0));
        assert!(json.get("requests").unwrap().get("p50_us").unwrap().as_f64().is_some());
        assert!(json.get("requests").unwrap().get("p99_us").unwrap().as_f64().is_some());
        let per_op = json.get("requests").unwrap().get("per_op").unwrap();
        assert_eq!(per_op.get("ping").unwrap().get("count").unwrap().as_f64(), Some(1.0));
        // Summary line mentions the headline numbers.
        let line = snap.summary_line();
        assert!(line.contains("served 3 request(s)"), "{line}");
        assert!(line.contains("p50"), "{line}");
        assert!(line.contains("300/1024 cache byte(s) used"), "{line}");
        assert!(line.contains("5 eviction(s)"), "{line}");
    }

    #[test]
    fn op_kinds_cover_the_protocol() {
        for kind in OpKind::ALL {
            assert_eq!(OpKind::ALL[kind.index()], kind);
        }
        assert_eq!(OpKind::of(&Op::Ping), OpKind::Ping);
        assert_eq!(OpKind::of(&Op::Stats), OpKind::Stats);
        assert_eq!(OpKind::of(&Op::Shutdown), OpKind::Shutdown);
        assert_eq!(OpKind::of(&Op::Audit { seeds: vec![] }), OpKind::Audit);
        assert_eq!(OpKind::of(&Op::Estimate { seeds: vec![] }), OpKind::Estimate);
    }
}

//! The determinism family: `hash-iter`, `wall-clock`, `debug-format`.
//!
//! These three rules guard the workspace's headline invariant — bitwise
//! identical solver output, golden-diffed wire responses, deterministic
//! cache rebuilds — against its three cheapest ways to die:
//!
//! * **`hash-iter`** — iterating a `HashMap`/`HashSet` yields entries in a
//!   randomized order; if that order reaches a fingerprint, cache key or
//!   response, two identical runs produce different bytes. The rule flags
//!   order-revealing method calls (`.iter()`, `.keys()`, …) and `for` loops
//!   over hash-typed bindings anywhere, and *any* hash-container mention
//!   inside determinism-critical scopes (`fingerprint`/`canonical` bodies
//!   and the protocol writer files), where `BTreeMap`/`BTreeSet` or sorted
//!   access is mandatory.
//! * **`wall-clock`** — `Instant::now`/`SystemTime` are allowed only where
//!   time is *measured about* the system (bench crate, the stats module),
//!   never where it could leak into an answer.
//! * **`debug-format`** — `{:?}` output is not a stable format across
//!   compiler versions or type changes; fingerprints, canonical encodings
//!   and protocol writers must spell out their encoding.

use crate::lexer::TokenKind;
use crate::rules::RuleCtx;
use crate::{Finding, DEBUG_FORMAT, HASH_ITER, WALL_CLOCK};

/// Methods whose call on a hash container observes iteration order.
const ORDER_REVEALING: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

pub(crate) fn check(ctx: &mut RuleCtx<'_>) {
    hash_iter(ctx);
    wall_clock(ctx);
    debug_format(ctx);
}

fn hash_iter(ctx: &mut RuleCtx<'_>) {
    let hash_bindings = collect_hash_bindings(ctx);
    let applies = |binding: &HashBinding, i: usize| match binding.scope {
        // Struct fields and module-level declarations taint the whole file.
        None => true,
        // Locals and params taint only their own function body.
        Some((start, end)) => start <= i && i < end,
    };
    let tokens = ctx.code_tokens();
    for idx in 0..tokens.len() {
        let (i, tok) = tokens[idx];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        // Strict scope: any hash container inside a fingerprint/canonical
        // body or a protocol-writer file.
        if (tok.text == "HashMap" || tok.text == "HashSet")
            && ctx.in_critical_scope(i)
            && !ctx.model.in_test(i)
        {
            ctx.push(Finding::new(
                HASH_ITER,
                ctx.path,
                tok.line,
                format!(
                    "{} in a determinism-critical scope (fingerprint/canonical/protocol \
                     writer); use BTreeMap/BTreeSet or sorted access",
                    tok.text
                ),
            ));
            continue;
        }
        if ctx.model.in_test(i) {
            continue;
        }
        // General scope: order-revealing access to a known hash binding.
        if hash_bindings.iter().any(|b| b.name == tok.text && applies(b, i)) {
            // `binding.iter()` and friends.
            if let (Some((_, dot)), Some((_, method)), Some((_, paren))) =
                (tokens.get(idx + 1), tokens.get(idx + 2), tokens.get(idx + 3))
            {
                if dot.is_punct('.')
                    && method.kind == TokenKind::Ident
                    && ORDER_REVEALING.contains(&method.text.as_str())
                    && paren.is_punct('(')
                {
                    ctx.push(Finding::new(
                        HASH_ITER,
                        ctx.path,
                        method.line,
                        format!(
                            "`{}.{}()` observes HashMap/HashSet iteration order; use a \
                             BTreeMap/BTreeSet or sort before use",
                            tok.text, method.text
                        ),
                    ));
                    continue;
                }
            }
            // `for x in [&[mut]] binding { … }`.
            if idx >= 1 {
                let mut back = idx - 1;
                while back > 0 && (tokens[back].1.is_punct('&') || tokens[back].1.is_ident("mut")) {
                    back -= 1;
                }
                // Only a direct loop over the binding (next token opens the
                // body); `for x in map.keys()` is caught by the rule above.
                let is_for_in = tokens[back].1.is_ident("in")
                    && tokens.get(idx + 1).is_some_and(|(_, next)| next.is_punct('{'));
                if is_for_in {
                    ctx.push(Finding::new(
                        HASH_ITER,
                        ctx.path,
                        tok.line,
                        format!(
                            "`for … in {}` iterates a HashMap/HashSet in randomized order; \
                             use a BTreeMap/BTreeSet or sort before use",
                            tok.text
                        ),
                    ));
                }
            }
        }
    }
}

/// A binding or field declared with a hash-container type, and the token
/// range (innermost fn body) in which the name refers to it.
struct HashBinding {
    name: String,
    scope: Option<(usize, usize)>,
}

/// Collects the names of bindings and fields declared as hash containers:
/// `name: HashMap<…>` (fields, lets, params) and `let name =
/// HashMap::new()`-style initializations. Locals and params are scoped to
/// their enclosing function so same-named bindings elsewhere stay clean.
fn collect_hash_bindings(ctx: &RuleCtx<'_>) -> Vec<HashBinding> {
    let scope_of = |i: usize| -> Option<(usize, usize)> {
        // Locals: the innermost fn body containing the declaration.
        let innermost = ctx
            .model
            .fn_spans
            .iter()
            .filter(|span| span.body.start <= i && i < span.body.end)
            .map(|span| (span.body.start, span.body.end))
            .min_by_key(|(start, end)| end - start);
        if innermost.is_some() {
            return innermost;
        }
        // Params sit between `fn` and the body: if walking back reaches
        // `fn` without crossing a brace or `;`, scope to the next body.
        let tokens = &ctx.model.tokens;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let tok = &tokens[j];
            if tok.is_comment() {
                continue;
            }
            if tok.is_punct('{') || tok.is_punct('}') || tok.is_punct(';') {
                break;
            }
            if tok.is_ident("fn") {
                return ctx
                    .model
                    .fn_spans
                    .iter()
                    .filter(|span| span.body.start > i)
                    .map(|span| (span.body.start, span.body.end))
                    .min_by_key(|(start, _)| *start);
            }
        }
        None
    };
    let tokens = ctx.code_tokens();
    let mut names = Vec::new();
    for idx in 0..tokens.len() {
        let (i, tok) = tokens[idx];
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        // Test-scope declarations must not taint same-named library
        // bindings (and test usage is exempt anyway).
        if ctx.model.in_test(i) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut back = idx;
        while back >= 2 && tokens[back - 1].1.is_punct(':') && tokens[back - 2].1.is_punct(':') {
            back -= 2;
            if back >= 1 && tokens[back - 1].1.kind == TokenKind::Ident {
                back -= 1;
            }
        }
        // Skip reference/mut sigils: `map: &mut HashMap<…>` still declares
        // a hash-typed binding named `map`.
        while back >= 2
            && (tokens[back - 1].1.is_punct('&')
                || tokens[back - 1].1.is_ident("mut")
                || tokens[back - 1].1.kind == TokenKind::Lifetime)
        {
            back -= 1;
        }
        if back == 0 {
            continue;
        }
        let before = &tokens[back - 1].1;
        // `name: HashMap<…>` — type ascription of a field, let or param.
        if before.is_punct(':')
            && back >= 2
            && !tokens[back - 2].1.is_punct(':')
            && tokens[back - 2].1.kind == TokenKind::Ident
        {
            let (decl, name) = (tokens[back - 2].0, tokens[back - 2].1.text.clone());
            names.push(HashBinding { name, scope: scope_of(decl) });
        }
        // `let [mut] name = HashMap::…` — inferred-type initialization.
        if before.is_punct('=') && back >= 2 {
            let mut j = back - 2;
            if tokens[j].1.kind == TokenKind::Ident {
                let (decl, name) = (tokens[j].0, tokens[j].1.text.clone());
                if tokens[j].1.is_ident("mut") {
                    continue;
                }
                if j >= 1 && tokens[j - 1].1.is_ident("mut") {
                    j -= 1;
                }
                if j >= 1 && tokens[j - 1].1.is_ident("let") {
                    names.push(HashBinding { name, scope: scope_of(decl) });
                }
            }
        }
    }
    names
}

fn wall_clock(ctx: &mut RuleCtx<'_>) {
    if ctx.policy_allows_wall_clock {
        return;
    }
    let tokens = ctx.code_tokens();
    for idx in 0..tokens.len() {
        let (i, tok) = tokens[idx];
        if ctx.model.in_test(i) {
            continue;
        }
        // `Instant :: now`
        if tok.is_ident("Instant") {
            if let (Some((_, c1)), Some((_, c2)), Some((_, now))) =
                (tokens.get(idx + 1), tokens.get(idx + 2), tokens.get(idx + 3))
            {
                if c1.is_punct(':') && c2.is_punct(':') && now.is_ident("now") {
                    ctx.push(Finding::new(
                        WALL_CLOCK,
                        ctx.path,
                        tok.line,
                        "Instant::now outside the bench crate and the stats module; wall-clock \
                         readings must never feed solver output, cache keys or responses"
                            .to_string(),
                    ));
                }
            }
        }
        if tok.is_ident("SystemTime") {
            ctx.push(Finding::new(
                WALL_CLOCK,
                ctx.path,
                tok.line,
                "SystemTime outside the bench crate and the stats module; wall-clock readings \
                 must never feed solver output, cache keys or responses"
                    .to_string(),
            ));
        }
    }
}

fn debug_format(ctx: &mut RuleCtx<'_>) {
    let tokens = ctx.code_tokens();
    for &(i, tok) in &tokens {
        if tok.kind != TokenKind::Str || !ctx.in_critical_scope(i) || ctx.model.in_test(i) {
            continue;
        }
        if tok.text.contains(":?}") || tok.text.contains("#?}") {
            ctx.push(Finding::new(
                DEBUG_FORMAT,
                ctx.path,
                tok.line,
                "`{:?}` formatting in a determinism-critical scope (fingerprint/canonical/\
                 protocol writer); Debug output is not a stable encoding — spell the format out"
                    .to_string(),
            ));
        }
    }
}

// Fixture: a well-formed suppression names a known rule and gives a reason.

pub fn invariant(value: Option<u32>) -> u32 {
    // lint:allow(panic): the caller constructs the Option as Some directly above
    value.expect("always Some")
}

pub fn same_line(value: Option<u32>) -> u32 {
    value.expect("always Some") // lint:allow(panic): same-line form of the annotation
}

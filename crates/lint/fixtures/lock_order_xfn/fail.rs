// Fixture: interprocedural lock-order must fire when the opposite
// acquisition order only materializes across a call boundary — neither
// function nests two `.lock()` calls textually, so the v1 lexical rule
// sees no edge at all.
use std::sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|p| p.into_inner());
        self.grab_beta() + *a
    }

    fn grab_beta(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(|p| p.into_inner());
        *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(|p| p.into_inner());
        self.grab_alpha() + *b
    }

    fn grab_alpha(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|p| p.into_inner());
        *a
    }
}

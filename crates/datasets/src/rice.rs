//! Surrogate for the Rice-Facebook dataset (Mislove et al., WSDM 2010).
//!
//! The original dataset (friendship links between Rice University students,
//! grouped by age) is not redistributable, so this module generates a
//! degree-corrected stochastic block model that matches every structural
//! statistic the paper reports:
//!
//! * 1205 nodes, 42443 undirected edges,
//! * four age groups; the two groups the paper analyses in detail:
//!   * `V1` (ages 18–19): 97 nodes, 513 within-group edges,
//!   * `V2` (age 20): 344 nodes, 7441 within-group edges,
//!   * 3350 edges between `V1` and `V2`,
//! * the remaining 764 nodes split over the two older age groups, with the
//!   remaining 31139 edges distributed to keep the overall density and a
//!   homophily level comparable to the published groups.
//!
//! Because the fairness phenomenon under study is driven by group sizes and
//! within/across connectivity (Section 4.2), matching those moments is what
//! makes the surrogate a faithful stand-in; use
//! [`loader`](crate::loader) to run on the genuine files when available.

use tcim_graph::generators::{stochastic_block_model, SbmConfig};
use tcim_graph::{Graph, Result};

/// Published structural statistics of the Rice-Facebook dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiceStats {
    /// Total number of nodes.
    pub num_nodes: usize,
    /// Total number of undirected edges.
    pub num_edges: usize,
    /// Nodes in group `V1` (ages 18–19).
    pub v1_nodes: usize,
    /// Within-group edges of `V1`.
    pub v1_within: usize,
    /// Nodes in group `V2` (age 20).
    pub v2_nodes: usize,
    /// Within-group edges of `V2`.
    pub v2_within: usize,
    /// Edges between `V1` and `V2`.
    pub v1_v2_across: usize,
}

/// The statistics reported in Section 7.1 of the paper.
pub const RICE_STATS: RiceStats = RiceStats {
    num_nodes: 1205,
    num_edges: 42443,
    v1_nodes: 97,
    v1_within: 513,
    v2_nodes: 344,
    v2_within: 7441,
    v1_v2_across: 3350,
};

/// Default activation probability used in the Rice experiments (Section 7.1).
pub const RICE_EDGE_PROBABILITY: f64 = 0.01;

/// Default number of Monte-Carlo samples for the Rice experiments.
pub const RICE_SAMPLES: usize = 500;

/// Builds the Rice-Facebook surrogate graph with four age groups.
///
/// Groups 0 and 1 correspond to the paper's `V1` (ages 18–19) and `V2`
/// (age 20); groups 2 and 3 are the two older cohorts that absorb the
/// remaining nodes and edges.
///
/// # Errors
///
/// Propagates generator errors (they indicate a bug in the published
/// constants rather than user error).
pub fn rice_facebook_surrogate(seed: u64) -> Result<Graph> {
    let stats = RICE_STATS;
    let remaining_nodes = stats.num_nodes - stats.v1_nodes - stats.v2_nodes; // 764
    let group3 = remaining_nodes * 2 / 3; // larger older cohort
    let group4 = remaining_nodes - group3;

    let accounted = stats.v1_within + stats.v2_within + stats.v1_v2_across;
    let remaining_edges = stats.num_edges - accounted; // 31139

    // Distribute the unreported edges: mostly within the two older cohorts
    // (keeping homophily comparable to V2's), the rest across groups so the
    // graph stays connected. The split is documented in DESIGN.md.
    let within3 = (remaining_edges as f64 * 0.45) as usize;
    let within4 = (remaining_edges as f64 * 0.25) as usize;
    let across_34 = (remaining_edges as f64 * 0.12) as usize;
    let across_older_young = remaining_edges - within3 - within4 - across_34;
    // Split the older→young edges between targets V1 and V2 proportionally to
    // their sizes.
    let to_v1 = across_older_young * stats.v1_nodes / (stats.v1_nodes + stats.v2_nodes);
    let to_v2 = across_older_young - to_v1;

    let config = SbmConfig {
        group_sizes: vec![stats.v1_nodes, stats.v2_nodes, group3, group4],
        p_within: 0.0,
        p_across: 0.0,
        edge_probability: RICE_EDGE_PROBABILITY,
        seed,
        expected_edges: Some(vec![
            ((0, 0), stats.v1_within),
            ((1, 1), stats.v2_within),
            ((0, 1), stats.v1_v2_across),
            ((2, 2), within3),
            ((3, 3), within4),
            ((2, 3), across_34),
            ((0, 2), to_v1 / 2),
            ((0, 3), to_v1 - to_v1 / 2),
            ((1, 2), to_v2 / 2),
            ((1, 3), to_v2 - to_v2 / 2),
        ]),
    };
    stochastic_block_model(&config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_graph::stats::graph_stats;
    use tcim_graph::GroupId;

    #[test]
    fn surrogate_matches_published_group_sizes_and_counts() {
        let g = rice_facebook_surrogate(1).unwrap();
        assert_eq!(g.num_nodes(), RICE_STATS.num_nodes);
        assert_eq!(g.num_groups(), 4);
        assert_eq!(g.group_size(GroupId(0)), RICE_STATS.v1_nodes);
        assert_eq!(g.group_size(GroupId(1)), RICE_STATS.v2_nodes);

        let stats = graph_stats(&g);
        // Directed edge counts are twice the undirected counts.
        assert_eq!(stats.groups[0].within_edges, 2 * RICE_STATS.v1_within);
        assert_eq!(stats.groups[1].within_edges, 2 * RICE_STATS.v2_within);
        // Total edge count within 1% of the published number (the sampler
        // can drop a handful of duplicate collisions).
        let undirected = stats.num_edges / 2;
        let error =
            (undirected as f64 - RICE_STATS.num_edges as f64).abs() / RICE_STATS.num_edges as f64;
        assert!(error < 0.01, "undirected edges {undirected}");
    }

    #[test]
    fn v2_is_much_better_connected_than_v1_per_capita() {
        let g = rice_facebook_surrogate(2).unwrap();
        let stats = graph_stats(&g);
        let v1_density = stats.groups[0].within_edges as f64 / RICE_STATS.v1_nodes as f64;
        let v2_density = stats.groups[1].within_edges as f64 / RICE_STATS.v2_nodes as f64;
        // 513/97 ≈ 5.3 vs 7441/344 ≈ 21.6 — the connectivity imbalance that
        // drives the disparity in Figure 7.
        assert!(v2_density > 3.0 * v1_density);
    }

    #[test]
    fn edge_probability_and_determinism() {
        let a = rice_facebook_surrogate(5).unwrap();
        let b = rice_facebook_surrogate(5).unwrap();
        assert_eq!(a, b);
        assert!(a.edges().all(|(_, _, p)| (p - RICE_EDGE_PROBABILITY).abs() < 1e-12));
        let c = rice_facebook_surrogate(6).unwrap();
        assert_ne!(a, c);
    }
}

//! Watts–Strogatz small-world generator with group labels.
//!
//! The model interpolates between a regular ring lattice (high clustering,
//! long paths) and a random graph (low clustering, short paths): every node
//! starts connected to its `neighbors` nearest neighbors on each side of a
//! ring, then each lattice tie is rewired to a uniformly random endpoint
//! with probability `rewire_probability`. Small-world graphs stress a
//! different influence regime than the SBM or preferential-attachment
//! families — influence spreads along overlapping triangles instead of
//! through hubs or dense blocks — which makes them a useful scenario family
//! for fairness sweeps.
//!
//! Groups are planted i.i.d. (minority fraction `minority_fraction`), so
//! group membership is *uncorrelated* with ring position: disparity on a
//! Watts–Strogatz scenario isolates what the diffusion dynamics alone do to
//! a minority, without a homophily confound.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::{GroupId, NodeId};

/// Configuration for the Watts–Strogatz generator.
#[derive(Debug, Clone)]
pub struct WattsStrogatzConfig {
    /// Total number of nodes (must exceed `2 * neighbors`).
    pub num_nodes: usize,
    /// Ring-lattice neighbors on **each side** of a node (initial degree is
    /// `2 * neighbors`).
    pub neighbors: usize,
    /// Probability that a lattice tie is rewired to a random endpoint.
    pub rewire_probability: f64,
    /// Fraction of nodes assigned to the minority group (group 1).
    pub minority_fraction: f64,
    /// Activation probability assigned to every edge.
    pub edge_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Samples a group-labelled Watts–Strogatz small-world graph.
///
/// Every undirected tie is stored as two directed edges sharing the same
/// activation probability. Rewiring preserves the edge count: a rewired tie
/// keeps its source and draws a fresh target that is neither the source nor
/// an existing neighbor (after a bounded number of failed draws on very
/// dense rings, the original tie is kept).
///
/// # Errors
///
/// Returns an error on invalid probabilities, a zero `neighbors`, or a node
/// count too small for the requested ring lattice.
pub fn watts_strogatz(config: &WattsStrogatzConfig) -> Result<Graph> {
    if config.neighbors == 0 {
        return Err(GraphError::InvalidParameter {
            message: "neighbors must be at least 1".to_string(),
        });
    }
    if config.num_nodes <= 2 * config.neighbors {
        return Err(GraphError::InvalidParameter {
            message: format!(
                "num_nodes ({}) must exceed 2 * neighbors ({})",
                config.num_nodes,
                2 * config.neighbors
            ),
        });
    }
    for (name, p) in [
        ("rewire_probability", config.rewire_probability),
        ("minority_fraction", config.minority_fraction),
    ] {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(GraphError::InvalidParameter {
                message: format!("{name} {p} is not in [0, 1]"),
            });
        }
    }
    if !(0.0..=1.0).contains(&config.edge_probability) || config.edge_probability.is_nan() {
        return Err(GraphError::InvalidProbability { value: config.edge_probability });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_nodes;
    let k = config.neighbors;

    // Groups first, so the RNG stream matches the other generators' order
    // (groups, then structure).
    let groups: Vec<GroupId> = (0..n)
        .map(|_| if rng.random_bool(config.minority_fraction) { GroupId(1) } else { GroupId(0) })
        .collect();

    // Ring lattice: node u ties to u+1 ..= u+k (mod n).
    let mut adjacency: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for u in 0..n {
        for step in 1..=k {
            let v = (u + step) % n;
            adjacency[u].insert(v);
            adjacency[v].insert(u);
        }
    }

    // Rewire each lattice tie (u, u+step) with probability β, in the
    // deterministic (u, step) order of the classic algorithm.
    for u in 0..n {
        for step in 1..=k {
            let v = (u + step) % n;
            if !adjacency[u].contains(&v) {
                // Already rewired away by an earlier draw targeting u.
                continue;
            }
            if !rng.random_bool(config.rewire_probability) {
                continue;
            }
            // Bounded retry: on an almost-complete ring a free endpoint may
            // not exist; keeping the lattice tie is the standard fallback.
            for _ in 0..32 {
                let w = rng.random_range(0..n);
                if w != u && !adjacency[u].contains(&w) {
                    adjacency[u].remove(&v);
                    adjacency[v].remove(&u);
                    adjacency[u].insert(w);
                    adjacency[w].insert(u);
                    break;
                }
            }
        }
    }

    let mut builder = GraphBuilder::with_capacity(n, 2 * n * k);
    for &g in &groups {
        builder.add_node(g);
    }
    for (u, neighbors) in adjacency.iter().enumerate() {
        for &v in neighbors.iter().filter(|&&v| v > u) {
            builder.add_undirected_edge(
                NodeId::from_index(u),
                NodeId::from_index(v),
                config.edge_probability,
            )?;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> WattsStrogatzConfig {
        WattsStrogatzConfig {
            num_nodes: 200,
            neighbors: 3,
            rewire_probability: 0.1,
            minority_fraction: 0.3,
            edge_probability: 0.1,
            seed: 11,
        }
    }

    #[test]
    fn zero_rewiring_gives_the_pure_ring_lattice() {
        let mut cfg = base_config();
        cfg.rewire_probability = 0.0;
        let g = watts_strogatz(&cfg).unwrap();
        assert_eq!(g.num_nodes(), 200);
        // Every node keeps its full lattice degree of 2k undirected ties.
        assert_eq!(g.num_edges(), 200 * 2 * 3);
        for node in g.nodes() {
            assert_eq!(g.out_degree(node), 6, "node {node:?}");
        }
    }

    #[test]
    fn rewiring_preserves_the_edge_count_and_shortens_paths() {
        let ring = {
            let mut cfg = base_config();
            cfg.rewire_probability = 0.0;
            watts_strogatz(&cfg).unwrap()
        };
        let rewired = {
            let mut cfg = base_config();
            cfg.rewire_probability = 0.5;
            watts_strogatz(&cfg).unwrap()
        };
        assert_eq!(ring.num_edges(), rewired.num_edges(), "rewiring must not change |E|");
        assert_ne!(ring, rewired, "β = 0.5 must actually move ties");
        assert_eq!(crate::traversal::largest_component_size(&rewired), 200);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = base_config();
        assert_eq!(watts_strogatz(&cfg).unwrap(), watts_strogatz(&cfg).unwrap());
        let mut other = cfg.clone();
        other.seed = 12;
        assert_ne!(watts_strogatz(&cfg).unwrap(), watts_strogatz(&other).unwrap());
    }

    #[test]
    fn minority_fraction_plants_a_minority_group() {
        let g = watts_strogatz(&base_config()).unwrap();
        assert_eq!(g.num_groups(), 2);
        let minority = g.group_size(GroupId(1));
        assert!((30..=90).contains(&minority), "minority size {minority} for fraction 0.3");
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut cfg = base_config();
        cfg.neighbors = 0;
        assert!(watts_strogatz(&cfg).is_err());
        let mut cfg = base_config();
        cfg.num_nodes = 6;
        assert!(watts_strogatz(&cfg).is_err());
        let mut cfg = base_config();
        cfg.rewire_probability = 1.5;
        assert!(watts_strogatz(&cfg).is_err());
        let mut cfg = base_config();
        cfg.minority_fraction = -0.1;
        assert!(watts_strogatz(&cfg).is_err());
        let mut cfg = base_config();
        cfg.edge_probability = f64::NAN;
        assert!(watts_strogatz(&cfg).is_err());
    }
}

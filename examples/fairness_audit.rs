//! Fairness audit of an arbitrary social network.
//!
//! Given any edge-list file (and optionally a node-attribute file), this
//! example quantifies how unfair a *standard* time-critical influence
//! campaign would be on that network, across a range of deadlines, and how
//! much of that disparity the fair surrogate removes. When no attribute file
//! is available, topological groups are derived by label propagation — the
//! same idea as the paper's Facebook-SNAP appendix, where groups come from
//! spectral clustering.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fairness_audit -- [edge_file] [group_file]
//! ```
//!
//! Without arguments the audit runs on the built-in Facebook-SNAP surrogate.

use std::sync::Arc;

use fairtcim::datasets::fbsnap::{fbsnap_spectral_groups, fbsnap_surrogate};
use fairtcim::datasets::loader::{load_dataset, LoadOptions};
use fairtcim::graph::clustering::{label_propagation, labels_to_groups, LabelPropagationConfig};
use fairtcim::graph::stats::graph_stats;
use fairtcim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let edge_file = args.next();
    let group_file = args.next();

    let graph = match edge_file {
        Some(path) => {
            println!("auditing {path}");
            let graph = load_dataset(
                std::path::PathBuf::from(&path),
                group_file.map(std::path::PathBuf::from),
                &LoadOptions { edge_probability: 0.05, undirected: true },
            )?;
            if graph.num_groups() <= 1 {
                println!(
                    "no group attribute supplied: deriving topological groups by label propagation"
                );
                let labels = label_propagation(&graph, &LabelPropagationConfig::default());
                graph.with_groups(labels_to_groups(&labels))?
            } else {
                graph
            }
        }
        None => {
            println!("no input file given: auditing the built-in Facebook-SNAP surrogate");
            let base = fbsnap_surrogate(3)?;
            fbsnap_spectral_groups(&base, 4)?
        }
    };

    let stats = graph_stats(&graph);
    println!(
        "network: {} nodes, {} directed edges, {} groups (sizes {:?}), assortativity {:.2}",
        stats.num_nodes,
        stats.num_edges,
        stats.num_groups,
        graph.group_sizes(),
        stats.assortativity
    );

    let graph = Arc::new(graph);
    let budget = 30.min(graph.num_nodes() / 10).max(1);
    println!("auditing a budget-{budget} campaign across deadlines\n");

    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14}",
        "deadline", "P1 reach", "P1 disparity", "P4 reach", "P4 disparity"
    );
    for deadline in
        [Deadline::finite(2), Deadline::finite(5), Deadline::finite(20), Deadline::unbounded()]
    {
        let oracle = WorldEstimator::new(
            Arc::clone(&graph),
            deadline,
            &WorldsConfig { num_worlds: 100, seed: 17, ..Default::default() },
        )?;
        let p1 = ProblemSpec::budget(budget)?.with_deadline(deadline);
        let p4 = p1.clone().with_fairness_wrapper(ConcaveWrapper::Log)?;
        let unfair = solve(&oracle, &p1)?;
        let fair = solve(&oracle, &p4)?;
        println!(
            "{:>9} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            deadline.to_string(),
            unfair.total_fraction(),
            unfair.disparity(),
            fair.total_fraction(),
            fair.disparity()
        );
    }

    println!(
        "\nReading the table: if the P1 disparity column grows as the deadline shrinks, the \
         network exhibits the time-critical unfairness the paper describes; the P4 columns show \
         what enforcing the fair surrogate would cost in reach."
    );
    Ok(())
}

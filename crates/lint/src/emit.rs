//! Output renderers for the CLI: machine-readable JSON (over the service
//! crate's `minijson`, the same dependency-free JSON layer the wire
//! protocol uses), GitHub Actions `::error` annotations, and the
//! `--stats` table.
//!
//! Every renderer is a pure function of the [`Report`], so output is
//! byte-identical for identical findings regardless of how many threads
//! produced them.

use tcim_service::Json;

use crate::{Finding, Report};

/// The JSON document for `--emit json`: version, file count, findings and
/// per-rule stats, in a fixed key order.
pub fn render_json(report: &Report, checked: usize) -> String {
    let findings: Vec<Json> = report
        .findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(f.rule.to_string())),
                ("path".to_string(), Json::Str(f.path.clone())),
                ("line".to_string(), Json::Num(f.line as f64)),
                ("message".to_string(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let stats: Vec<Json> = report
        .stats
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(s.rule.to_string())),
                ("findings".to_string(), Json::Num(s.findings as f64)),
                ("suppressions_used".to_string(), Json::Num(s.suppressions_used as f64)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("version".to_string(), Json::Num(1.0)),
        ("checked".to_string(), Json::Num(checked as f64)),
        ("findings".to_string(), Json::Arr(findings)),
        ("stats".to_string(), Json::Arr(stats)),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    out
}

/// GitHub Actions workflow-command annotations for `--emit github`: one
/// `::error file=…,line=…` line per finding, so violations surface inline
/// on the PR diff.
pub fn render_github(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "::error file={},line={},title=tcim-lint {}::{}\n",
            f.path,
            f.line,
            f.rule,
            escape_workflow_command(&f.message)
        ));
    }
    out
}

/// The `--stats` table: one row per rule with finding and used-suppression
/// counts, zero rows included (the absence of findings is the signal).
pub fn render_stats(report: &Report) -> String {
    let width = report.stats.iter().map(|s| s.rule.len()).max().unwrap_or(0);
    let mut out = String::from("rule");
    out.push_str(&" ".repeat(width.saturating_sub(4) + 2));
    out.push_str("findings  suppressions-used\n");
    for s in &report.stats {
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>17}\n",
            s.rule,
            s.findings,
            s.suppressions_used,
            width = width
        ));
    }
    out
}

/// The data portion of a workflow command: `%`, CR and LF must be
/// percent-encoded or the message truncates at the first newline.
fn escape_workflow_command(message: &str) -> String {
    message.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::LockGraph;
    use crate::RuleStats;

    fn report_with(findings: Vec<Finding>) -> Report {
        Report { findings, lock_graph: LockGraph::default(), stats: Vec::new() }
    }

    #[test]
    fn json_round_trips_through_minijson() {
        let report = Report {
            findings: vec![Finding::new(crate::PANIC, "src/lib.rs", 7, "a \"quoted\" msg".into())],
            lock_graph: LockGraph::default(),
            stats: vec![RuleStats { rule: crate::PANIC, findings: 1, suppressions_used: 2 }],
        };
        let text = render_json(&report, 42);
        let doc = Json::parse(&text).expect("emitted JSON parses");
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("checked").and_then(Json::as_u64), Some(42));
        let findings = doc.get("findings").and_then(Json::as_arr).expect("findings array");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("rule").and_then(Json::as_str), Some("panic"));
        assert_eq!(findings[0].get("line").and_then(Json::as_u64), Some(7));
        assert_eq!(findings[0].get("message").and_then(Json::as_str), Some("a \"quoted\" msg"));
        let stats = doc.get("stats").and_then(Json::as_arr).expect("stats array");
        assert_eq!(stats[0].get("suppressions_used").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn github_annotations_escape_newlines() {
        let report =
            report_with(vec![Finding::new(crate::PANIC, "a.rs", 3, "line one\nline two".into())]);
        let text = render_github(&report.findings);
        assert_eq!(text, "::error file=a.rs,line=3,title=tcim-lint panic::line one%0Aline two\n");
    }

    #[test]
    fn stats_table_lists_every_rule() {
        let report = Report {
            findings: Vec::new(),
            lock_graph: LockGraph::default(),
            stats: vec![
                RuleStats { rule: crate::PANIC, findings: 0, suppressions_used: 3 },
                RuleStats { rule: crate::LOCK_ORDER, findings: 1, suppressions_used: 0 },
            ],
        };
        let table = render_stats(&report);
        assert!(table.contains("panic"));
        assert!(table.contains("lock-order"));
        assert!(table.lines().count() == 3, "header + one row per rule");
    }
}

// Fixture: lock-order stays quiet on consistent ordering, and on guards
// released (block end or drop) before the next acquisition.
use std::sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|p| p.into_inner());
        let b = self.beta.lock().unwrap_or_else(|p| p.into_inner());
        *a + *b
    }

    pub fn sequential(&self) -> u32 {
        // The alpha guard dies with its block: no nesting, so the reverse
        // textual order records no edge.
        let first = {
            let b = self.beta.lock().unwrap_or_else(|p| p.into_inner());
            *b
        };
        let a = self.alpha.lock().unwrap_or_else(|p| p.into_inner());
        first + *a
    }

    pub fn dropped(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(|p| p.into_inner());
        let snapshot = *b;
        drop(b);
        let a = self.alpha.lock().unwrap_or_else(|p| p.into_inner());
        snapshot + *a
    }
}

//! Linear Threshold (LT) model simulation with discrete time steps.
//!
//! Every node draws a threshold `θ_v ~ U[0, 1]` at the start of the process.
//! Incoming edge weights are the activation probabilities normalised by the
//! weighted in-degree (so they sum to at most 1, as the LT model requires). A
//! node activates at step `t` as soon as the total weight of its active
//! in-neighbours reaches `θ_v`. The paper states its results "can easily be
//! extended to the LT model"; this module provides that extension so the same
//! estimators and solvers run under either model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tcim_graph::{Graph, NodeId};

use crate::error::Result;
use crate::ic::validate_seeds;
use crate::trace::{ActivationTrace, NOT_ACTIVATED};

/// Precomputed in-edge view used by the LT simulation: for every node, the
/// list of `(in_neighbor, normalized_weight)` pairs.
#[derive(Debug, Clone)]
pub struct LtWeights {
    in_edges: Vec<Vec<(NodeId, f64)>>,
}

impl LtWeights {
    /// Builds normalised LT in-edge weights from `graph`.
    ///
    /// Edge weight `w(u, v) = p(u, v) / Σ_u' p(u', v)` when the weighted
    /// in-degree exceeds 1, otherwise the raw probability is kept, so the
    /// total incoming weight never exceeds 1.
    ///
    /// Self-loops are dropped: in the LT model a node cannot contribute to
    /// its own threshold, so a loop would only dilute the weights of real
    /// in-neighbours (and make a live-edge sampler waste the node's single
    /// incoming pick on itself). Duplicate parallel edges — possible for
    /// graphs assembled via [`Graph::from_csr`], which does not dedup —
    /// collapse to the highest-probability copy, matching what
    /// `GraphBuilder::build` does for builder-made graphs.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut in_edges: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        for (s, t, p) in graph.edges() {
            if s == t {
                continue;
            }
            in_edges[t.index()].push((s, p));
        }
        for edges in in_edges.iter_mut() {
            // Coalesce parallel duplicates: keep the max-probability copy per
            // source. CSR iteration already delivers sources in ascending
            // order, but sort anyway so hand-built CSR inputs cannot break
            // the adjacency invariant dedup relies on.
            edges.sort_by(|a, b| {
                a.0.cmp(&b.0).then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
            });
            edges.dedup_by_key(|(s, _)| *s);
            let total: f64 = edges.iter().map(|(_, w)| *w).sum();
            if total > 1.0 {
                for (_, w) in edges.iter_mut() {
                    *w /= total;
                }
            }
        }
        LtWeights { in_edges }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.in_edges.len()
    }

    /// Returns `true` when the weight table is empty.
    pub fn is_empty(&self) -> bool {
        self.in_edges.is_empty()
    }

    /// Incoming `(neighbor, weight)` pairs of `node`.
    pub fn in_edges(&self, node: NodeId) -> &[(NodeId, f64)] {
        &self.in_edges[node.index()]
    }

    /// Approximate resident heap bytes of the table: one `(NodeId, f64)`
    /// pair per in-edge plus a `Vec` header per node. Used for cache
    /// budgeting in the serving tier.
    pub fn approx_bytes(&self) -> usize {
        let vec_header = std::mem::size_of::<Vec<u8>>();
        vec_header
            + self
                .in_edges
                .iter()
                .map(|edges| vec_header + edges.len() * std::mem::size_of::<(NodeId, f64)>())
                .sum::<usize>()
    }
}

/// Simulates one LT cascade from `seeds` with uniformly random thresholds.
///
/// # Errors
///
/// Returns an error if a seed is out of bounds.
pub fn simulate_lt<R: RngExt + ?Sized>(
    graph: &Graph,
    weights: &LtWeights,
    seeds: &[NodeId],
    rng: &mut R,
) -> Result<ActivationTrace> {
    validate_seeds(graph, seeds)?;
    let n = graph.num_nodes();
    let thresholds: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();

    let mut times = vec![NOT_ACTIVATED; n];
    let mut incoming = vec![0.0f64; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if times[s.index()] == NOT_ACTIVATED {
            times[s.index()] = 0;
            frontier.push(s);
        }
    }

    let mut next: Vec<NodeId> = Vec::new();
    let mut step = 0u32;
    while !frontier.is_empty() {
        step += 1;
        next.clear();
        // Accumulate the weight contributed by nodes activated last step,
        // then activate every inactive node whose threshold is now met.
        let mut touched: Vec<NodeId> = Vec::new();
        for &v in &frontier {
            for w in graph.out_neighbors(v) {
                if times[w.index()] == NOT_ACTIVATED {
                    touched.push(w);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &w in &touched {
            // Recompute the incoming active weight of `w` from scratch over
            // its (few) in-edges; simpler than incremental bookkeeping and
            // only done for nodes adjacent to the frontier.
            let total: f64 = weights
                .in_edges(w)
                .iter()
                .filter(|(u, _)| {
                    let t = times[u.index()];
                    t != NOT_ACTIVATED && t < step
                })
                .map(|(_, wgt)| *wgt)
                .sum();
            incoming[w.index()] = total;
            if total >= thresholds[w.index()] && times[w.index()] == NOT_ACTIVATED {
                times[w.index()] = step;
                next.push(w);
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }

    Ok(ActivationTrace::from_times(times))
}

/// Convenience wrapper running one deterministic LT cascade from a `u64` seed.
pub fn simulate_lt_seeded(
    graph: &Graph,
    weights: &LtWeights,
    seeds: &[NodeId],
    seed: u64,
) -> Result<ActivationTrace> {
    let mut rng = StdRng::seed_from_u64(seed);
    simulate_lt(graph, weights, seeds, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::Deadline;
    use tcim_graph::{GraphBuilder, GroupId};

    fn path_graph(p: f64) -> Graph {
        let mut b = GraphBuilder::new();
        let nodes = b.add_nodes(4, GroupId(0));
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn weights_are_normalized_to_at_most_one() {
        // Node 2 has two in-edges of probability 0.8 each -> normalised to 0.5.
        let mut b = GraphBuilder::new();
        let nodes = b.add_nodes(3, GroupId(0));
        b.add_edge(nodes[0], nodes[2], 0.8).unwrap();
        b.add_edge(nodes[1], nodes[2], 0.8).unwrap();
        let g = b.build().unwrap();
        let w = LtWeights::from_graph(&g);
        let total: f64 = w.in_edges(NodeId(2)).iter().map(|(_, x)| *x).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(w.in_edges(NodeId(0)).is_empty());
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn full_weight_edges_propagate_along_a_path() {
        let g = path_graph(1.0);
        let w = LtWeights::from_graph(&g);
        let trace = simulate_lt_seeded(&g, &w, &[NodeId(0)], 4).unwrap();
        // Thresholds are <= 1.0 with probability 1, and the single in-edge has
        // weight 1.0, so the whole path activates with hop timestamps.
        for i in 0..4u32 {
            assert_eq!(trace.activation_time(NodeId(i)), Some(i));
        }
    }

    #[test]
    fn zero_weight_edges_never_propagate() {
        let g = path_graph(0.0);
        let w = LtWeights::from_graph(&g);
        let trace = simulate_lt_seeded(&g, &w, &[NodeId(0)], 4).unwrap();
        assert_eq!(trace.num_activated_by(Deadline::unbounded()), 1);
    }

    #[test]
    fn self_loops_are_dropped_at_construction() {
        // 0 -> 1 plus a self-loop 1 -> 1. Before the fix the loop counted
        // towards node 1's weighted in-degree, diluting the real edge from
        // 0.6 to 0.6/1.6 — and a live-edge sampler could waste node 1's
        // single incoming pick on itself.
        let mut b = GraphBuilder::new();
        let nodes = b.add_nodes(2, GroupId(0));
        b.add_edge(nodes[0], nodes[1], 0.6).unwrap();
        b.add_undirected_edge(nodes[1], nodes[1], 1.0).unwrap();
        let g = b.build().unwrap();
        let w = LtWeights::from_graph(&g);
        assert_eq!(w.in_edges(NodeId(1)), &[(NodeId(0), 0.6)]);
    }

    #[test]
    fn duplicate_parallel_edges_collapse_to_the_strongest_copy() {
        // A multigraph assembled directly in CSR form (GraphBuilder dedups,
        // Graph::from_csr does not): node 0 has two parallel edges to node 2
        // (0.3 and 0.5) plus a self-loop, node 1 one edge (0.4).
        let g = Graph::from_csr(
            vec![0, 3, 4, 4],
            vec![2, 2, 0, 2],
            vec![0.3, 0.5, 0.9, 0.4],
            vec![GroupId(0); 3],
        )
        .unwrap();
        let w = LtWeights::from_graph(&g);
        // The duplicate collapses to the 0.5 copy and the self-loop 0 -> 0
        // vanishes; 0.5 + 0.4 <= 1 so no normalisation kicks in.
        assert_eq!(w.in_edges(NodeId(2)), &[(NodeId(0), 0.5), (NodeId(1), 0.4)]);
        assert!(w.in_edges(NodeId(0)).is_empty());
        // A node with a surviving weighted in-degree over 1 still normalises.
        let heavy =
            Graph::from_csr(vec![0, 1, 2, 2], vec![2, 2], vec![0.8, 0.8], vec![GroupId(0); 3])
                .unwrap();
        let hw = LtWeights::from_graph(&heavy);
        let total: f64 = hw.in_edges(NodeId(2)).iter().map(|(_, x)| *x).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seeds_are_validated() {
        let g = path_graph(0.5);
        let w = LtWeights::from_graph(&g);
        assert!(simulate_lt_seeded(&g, &w, &[NodeId(50)], 0).is_err());
    }

    #[test]
    fn deterministic_for_a_fixed_rng_seed() {
        let g = path_graph(0.6);
        let w = LtWeights::from_graph(&g);
        let a = simulate_lt_seeded(&g, &w, &[NodeId(0)], 9).unwrap();
        let b = simulate_lt_seeded(&g, &w, &[NodeId(0)], 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn activation_monotone_in_edge_probability() {
        // Average activations with p=0.9 should exceed p=0.1 on a star.
        let build = |p: f64| {
            let mut b = GraphBuilder::new();
            let hub = b.add_node(GroupId(0));
            let leaves = b.add_nodes(100, GroupId(0));
            for &leaf in &leaves {
                b.add_edge(hub, leaf, p).unwrap();
            }
            (b.build().unwrap(), hub)
        };
        let count = |p: f64| {
            let (g, hub) = build(p);
            let w = LtWeights::from_graph(&g);
            let mut total = 0usize;
            for seed in 0..50 {
                total += simulate_lt_seeded(&g, &w, &[hub], seed)
                    .unwrap()
                    .num_activated_by(Deadline::unbounded());
            }
            total
        };
        assert!(count(0.9) > count(0.1));
    }
}

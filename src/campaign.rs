//! The fluent [`Campaign`] builder: describe a full fair-TCIM campaign —
//! dataset, deadline, estimator, objective, fairness — in one chain, and
//! solve it through the canonical `tcim_core::solve` path.
//!
//! A `Campaign` assembles a [`ProblemSpec`] plus the context the spec is
//! solved in (which graph, which diffusion model, optionally which shared
//! [`OracleCache`]). Setters validate **eagerly**: a degenerate value
//! (budget 0, NaN quota, negative weight …) is recorded at the call site and
//! surfaced as a [`CoreError::InvalidConfig`] naming the field when
//! [`Campaign::solve`] (or [`Campaign::spec`]) runs, so a typo never
//! silently solves a different problem.
//!
//! ```
//! use fairtcim::prelude::*;
//!
//! // The paper's illustrative network, deadline 2, 64 live-edge worlds:
//! // solve the fair budget problem P4 with the log surrogate.
//! let report = Campaign::on(Dataset::Illustrative)
//!     .deadline(2)
//!     .estimator(worlds(64, 0))
//!     .budget(2)
//!     .fair(ConcaveWrapper::Log)
//!     .solve()?;
//! assert_eq!(report.label, "P4-log");
//! assert_eq!(report.num_seeds(), 2);
//! // Reports echo the canonical spec, so results are self-describing.
//! assert!(report.spec.as_deref().unwrap().starts_with("tcim:budget:2|concave:log"));
//! # Ok::<(), fairtcim::core::CoreError>(())
//! ```
//!
//! Several solves against one network amortize estimator construction by
//! sharing an [`OracleCache`] (the serving subsystem's cache — worlds sample
//! once per `(dataset, model, samples, seed)` and every deadline reuses
//! them):
//!
//! ```
//! use std::sync::Arc;
//! use fairtcim::prelude::*;
//!
//! let cache = Arc::new(OracleCache::new());
//! let base = Campaign::on(Dataset::Illustrative)
//!     .shared_cache(Arc::clone(&cache))
//!     .deadline(2)
//!     .estimator(worlds(64, 0));
//! let unfair = base.clone().budget(2).solve()?;
//! let fair = base.clone().budget(2).fair(ConcaveWrapper::Log).solve()?;
//! assert!(fair.disparity() <= unfair.disparity() + 1e-9);
//! assert_eq!(cache.stats().world_misses, 1, "both solves share one world pool");
//! # Ok::<(), fairtcim::core::CoreError>(())
//! ```

use std::sync::Arc;

use tcim_core::{
    audit_seed_set, ConcaveWrapper, CoreError, Estimator, EstimatorConfig, FairnessMode,
    FairnessReport, GreedyAlgorithm, Objective, ProblemSpec, Result, RisConfig, SolverReport,
    WorldsConfig,
};
use tcim_datasets::registry::Dataset;
use tcim_datasets::scenario::ScenarioSpec;
use tcim_diffusion::{Deadline, WorldEstimator};
use tcim_graph::{Graph, GroupId, NodeId};
use tcim_service::{DatasetSpec, ModelKind, OracleCache, OracleSpec, ServiceError};

/// A live-edge-worlds estimator config (`num_worlds` samples, RNG `seed`) —
/// shorthand for `Campaign::estimator` / `ProblemSpec::with_estimator`.
pub fn worlds(num_worlds: usize, seed: u64) -> EstimatorConfig {
    EstimatorConfig::Worlds(WorldsConfig { num_worlds, seed, ..Default::default() })
}

/// A reverse-reachable-sketch estimator config (`num_sets` sketches, RNG
/// `seed`) — the backend that wins on large sparse graphs.
pub fn ris(num_sets: usize, seed: u64) -> EstimatorConfig {
    EstimatorConfig::Ris(RisConfig { num_sets, seed, ..Default::default() })
}

/// A fresh Monte-Carlo estimator config (`samples` cascades per query, RNG
/// `seed`) — the unbiased held-out re-scorer.
pub fn monte_carlo(samples: usize, seed: u64) -> EstimatorConfig {
    EstimatorConfig::MonteCarlo { samples, seed }
}

#[derive(Clone)]
enum Source {
    Dataset(Dataset),
    Graph(Arc<Graph>),
}

/// Fluent builder for one fair-TCIM solve; see the [module docs](self) for
/// examples.
#[derive(Clone)]
pub struct Campaign {
    source: Source,
    dataset_seed: u64,
    model: ModelKind,
    deadline: Deadline,
    estimator: EstimatorConfig,
    objective: Option<Objective>,
    fairness: FairnessMode,
    algorithm: GreedyAlgorithm,
    candidates: Option<Vec<NodeId>>,
    cache: Option<Arc<OracleCache>>,
    /// First eager-validation failure, surfaced by `spec()` / `solve()`.
    error: Option<String>,
}

impl Campaign {
    fn new(source: Source) -> Self {
        Campaign {
            source,
            dataset_seed: 42,
            model: ModelKind::IndependentCascade,
            deadline: Deadline::unbounded(),
            estimator: EstimatorConfig::default(),
            objective: None,
            fairness: FairnessMode::Total,
            algorithm: GreedyAlgorithm::default(),
            candidates: None,
            cache: None,
            error: None,
        }
    }

    /// A campaign over a registry dataset (generator seed 42; override with
    /// [`Campaign::dataset_seed`]).
    pub fn on(dataset: Dataset) -> Self {
        Campaign::new(Source::Dataset(dataset))
    }

    /// A campaign over an explicitly built graph.
    pub fn on_graph(graph: Arc<Graph>) -> Self {
        Campaign::new(Source::Graph(graph))
    }

    /// A campaign over a typed synthetic scenario — the open counterpart of
    /// [`Campaign::on`]: any generator family × size × group model ×
    /// weight model, cached by the scenario's canonical fingerprint exactly
    /// like a named dataset. The spec is validated eagerly; a degenerate
    /// one surfaces from [`Campaign::solve`] naming the offending field.
    ///
    /// ```
    /// use fairtcim::prelude::*;
    ///
    /// let spec = ScenarioSpec::barabasi_albert(150, 3)?.with_homophily_bias(4.0)?;
    /// let report = Campaign::on_scenario(spec)
    ///     .deadline(5)
    ///     .estimator(worlds(32, 0))
    ///     .budget(3)
    ///     .solve()?;
    /// assert_eq!(report.num_seeds(), 3);
    /// # Ok::<(), fairtcim::core::CoreError>(())
    /// ```
    pub fn on_scenario(spec: ScenarioSpec) -> Self {
        let mut campaign = Campaign::new(Source::Dataset(Dataset::Scenario(spec.clone())));
        if let Err(err) = spec.validate() {
            campaign.record_message(err.to_string());
        }
        campaign
    }

    /// A campaign over a named scenario preset
    /// ([`ScenarioSpec::PRESET_NAMES`]); an unknown name is recorded as an
    /// eager error surfaced at solve time.
    pub fn on_scenario_preset(name: &str) -> Self {
        match ScenarioSpec::preset(name) {
            Some(spec) => Campaign::on_scenario(spec),
            None => {
                let mut campaign = Campaign::new(Source::Dataset(Dataset::Illustrative));
                campaign.record_message(format!(
                    "field 'scenario': unknown preset '{name}' (expected one of: {})",
                    ScenarioSpec::PRESET_NAMES.join(", ")
                ));
                campaign
            }
        }
    }

    /// Records the first eager-validation failure as its bare message (the
    /// builders only ever produce `InvalidConfig`, whose Display would
    /// otherwise double-prefix when re-wrapped by [`Campaign::spec`]).
    fn record(&mut self, err: CoreError) {
        let message = match err {
            CoreError::InvalidConfig { message } => message,
            other => other.to_string(),
        };
        self.record_message(message);
    }

    fn record_message(&mut self, message: impl Into<String>) {
        if self.error.is_none() {
            self.error = Some(message.into());
        }
    }

    /// Sets the surrogate-generator seed for dataset campaigns.
    pub fn dataset_seed(mut self, seed: u64) -> Self {
        self.dataset_seed = seed;
        self
    }

    /// Selects the diffusion model (independent cascade by default; the
    /// linear-threshold model requires the worlds estimator).
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Sets the deadline `τ` (`u32` for a finite horizon, or a
    /// [`Deadline`]).
    pub fn deadline(mut self, deadline: impl Into<Deadline>) -> Self {
        self.deadline = deadline.into();
        self
    }

    /// Selects the estimator backend (see [`worlds`], [`ris`],
    /// [`monte_carlo`]).
    pub fn estimator(mut self, config: EstimatorConfig) -> Self {
        self.estimator = config;
        self
    }

    /// Budget objective: select at most `budget` seeds (P1 family).
    pub fn budget(mut self, budget: usize) -> Self {
        match ProblemSpec::budget(budget) {
            Ok(spec) => self.objective = Some(spec.objective),
            Err(err) => self.record(err),
        }
        self
    }

    /// Cover objective: reach the coverage quota `Q ∈ [0, 1]` with the
    /// fewest seeds (P2 family).
    pub fn cover(mut self, quota: f64) -> Self {
        match ProblemSpec::cover(quota) {
            Ok(spec) => self.objective = Some(spec.objective),
            Err(err) => self.record(err),
        }
        self
    }

    fn update_cover(
        mut self,
        field: &str,
        apply: impl FnOnce(ProblemSpec) -> Result<ProblemSpec>,
    ) -> Self {
        match self.objective.take() {
            Some(objective @ Objective::Cover { .. }) => {
                let probe = ProblemSpec { objective, ..ProblemSpec::default() };
                match apply(probe) {
                    Ok(spec) => self.objective = Some(spec.objective),
                    Err(err) => self.record(err),
                }
            }
            other => {
                self.objective = other;
                self.record_message(format!(
                    "field '{field}': applies to cover campaigns; call cover() first"
                ));
            }
        }
        self
    }

    /// Numerical slack on the cover quota.
    pub fn tolerance(self, tolerance: f64) -> Self {
        self.update_cover("tolerance", |spec| spec.with_tolerance(tolerance))
    }

    /// Caps the seed count of a cover campaign.
    pub fn max_seeds(self, max_seeds: usize) -> Self {
        self.update_cover("max_seeds", |spec| spec.with_max_seeds(max_seeds))
    }

    /// Fair budget surrogate P4: maximize `Σ_i λ_i · H(f_τ(S; V_i))` with
    /// the concave wrapper `H` (keeps previously set [`Campaign::weights`]).
    pub fn fair(mut self, wrapper: ConcaveWrapper) -> Self {
        if !wrapper.is_valid() {
            self.record_message(format!(
                "field 'wrapper': concave wrapper {wrapper} has invalid parameters"
            ));
            return self;
        }
        let weights = match std::mem::take(&mut self.fairness) {
            FairnessMode::Concave { weights, .. } => weights,
            _ => None,
        };
        self.fairness = FairnessMode::Concave { wrapper, weights };
        self
    }

    /// Per-group multipliers `λ_i` for the fair budget surrogate; call after
    /// [`Campaign::fair`].
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        if weights.iter().any(|x| *x < 0.0 || x.is_nan()) {
            self.record_message("field 'weights': group weights must be non-negative");
            return self;
        }
        match &mut self.fairness {
            FairnessMode::Concave { weights: slot, .. } => *slot = Some(weights),
            _ => self.record_message("field 'weights': call fair(wrapper) before weights()"),
        }
        self
    }

    /// Fair cover P6: require the quota in *every* non-empty group.
    pub fn fair_per_group(mut self) -> Self {
        self.fairness = FairnessMode::GroupQuota { group: None };
        self
    }

    /// Single-group cover: require the quota in `group` alone (the Theorem 2
    /// per-group analysis).
    pub fn for_group(mut self, group: GroupId) -> Self {
        self.fairness = FairnessMode::GroupQuota { group: Some(group) };
        self
    }

    /// Disparity-capped solve (P3 for budgets, P5 for covers): the solver
    /// tunes the surrogate knobs to keep measured disparity within `cap`.
    pub fn disparity_cap(mut self, cap: f64) -> Self {
        if !(0.0..=1.0).contains(&cap) || cap.is_nan() {
            self.record_message(format!("field 'disparity_cap': must be in [0, 1], got {cap}"));
            return self;
        }
        self.fairness = FairnessMode::Constrained { disparity_cap: cap };
        self
    }

    /// Restricts seeds to an explicit candidate pool.
    pub fn candidates(mut self, candidates: Vec<NodeId>) -> Self {
        if candidates.is_empty() {
            self.record_message("field 'candidates': must not be empty");
            return self;
        }
        self.candidates = Some(candidates);
        self
    }

    /// Selects the greedy strategy (CELF lazy greedy by default).
    pub fn algorithm(mut self, algorithm: GreedyAlgorithm) -> Self {
        match ProblemSpec::budget(1).and_then(|spec| spec.with_algorithm(algorithm)) {
            Ok(spec) => self.algorithm = spec.algorithm,
            Err(err) => self.record(err),
        }
        self
    }

    /// Shares an [`OracleCache`] across campaigns (dataset campaigns only):
    /// graphs, LT tables and live-edge worlds build once and every further
    /// solve reuses them.
    pub fn shared_cache(mut self, cache: Arc<OracleCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    fn stored_error(&self) -> Option<CoreError> {
        self.error.as_ref().map(|message| CoreError::InvalidConfig {
            message: message.strip_prefix("invalid configuration: ").unwrap_or(message).to_string(),
        })
    }

    /// The assembled, validated [`ProblemSpec`] — pass it to
    /// `tcim_core::solve` against your own oracle, or render it to a service
    /// request.
    ///
    /// # Errors
    ///
    /// Surfaces the first eagerly recorded builder error, a missing
    /// objective, or any cross-field validation failure — always a
    /// [`CoreError::InvalidConfig`] naming the field.
    pub fn spec(&self) -> Result<ProblemSpec> {
        if let Some(err) = self.stored_error() {
            return Err(err);
        }
        let Some(objective) = self.objective.clone() else {
            return Err(CoreError::InvalidConfig {
                message: "field 'objective': set a budget or a cover quota before solving".into(),
            });
        };
        let spec = ProblemSpec {
            objective,
            fairness: self.fairness.clone(),
            algorithm: self.algorithm,
            candidates: self.candidates.clone(),
            deadline: Some(self.deadline),
            estimator: Some(self.estimator.clone()),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The campaign's graph (built through the shared cache when one is
    /// attached).
    ///
    /// # Errors
    ///
    /// Propagates dataset-generator failures.
    pub fn graph(&self) -> Result<Arc<Graph>> {
        match &self.source {
            Source::Graph(graph) => Ok(Arc::clone(graph)),
            Source::Dataset(dataset) => {
                let spec = DatasetSpec { dataset: dataset.clone(), seed: self.dataset_seed };
                if let Some(cache) = &self.cache {
                    return cache.graph(&spec).map_err(unwrap_service_error);
                }
                let bundle = dataset.build(self.dataset_seed).map_err(|err| {
                    CoreError::InvalidConfig { message: format!("dataset failed to build: {err}") }
                })?;
                Ok(Arc::new(bundle.graph))
            }
        }
    }

    fn build_oracle(&self, spec: &ProblemSpec) -> Result<Arc<Estimator>> {
        if let (Some(cache), Source::Dataset(dataset)) = (&self.cache, &self.source) {
            let oracle_spec = OracleSpec::for_spec(
                DatasetSpec { dataset: dataset.clone(), seed: self.dataset_seed },
                self.model,
                spec,
            );
            return cache.oracle(&oracle_spec).map_err(unwrap_service_error);
        }
        let graph = self.graph()?;
        let estimator = match (self.model, &self.estimator) {
            (ModelKind::IndependentCascade, config) => config.build(graph, self.deadline)?,
            (ModelKind::LinearThreshold, EstimatorConfig::Worlds(config)) => {
                Estimator::Worlds(WorldEstimator::new_lt(graph, self.deadline, config)?)
            }
            (ModelKind::LinearThreshold, _) => {
                return Err(CoreError::InvalidConfig {
                    message: "field 'estimator': the linear-threshold model requires the worlds \
                              estimator"
                        .into(),
                })
            }
        };
        Ok(Arc::new(estimator))
    }

    /// Builds (or fetches from the shared cache) the campaign's oracle and
    /// solves the assembled spec through `tcim_core::solve`.
    ///
    /// # Errors
    ///
    /// Surfaces builder/validation errors and propagates estimator or solver
    /// failures.
    pub fn solve(&self) -> Result<SolverReport> {
        let spec = self.spec()?;
        let oracle = self.build_oracle(&spec)?;
        tcim_core::solve(oracle.as_ref(), &spec)
    }

    /// Audits an explicit seed set with the campaign's oracle (no objective
    /// required): per-group influence, disparity, worst-off group.
    ///
    /// # Errors
    ///
    /// Surfaces builder errors and propagates estimator failures (e.g.
    /// out-of-bounds seeds).
    pub fn audit(&self, seeds: &[NodeId]) -> Result<FairnessReport> {
        if let Some(err) = self.stored_error() {
            return Err(err);
        }
        // The oracle identity only needs deadline + estimator; audits don't
        // carry an objective.
        let probe = ProblemSpec {
            deadline: Some(self.deadline),
            estimator: Some(self.estimator.clone()),
            ..ProblemSpec::default()
        };
        let oracle = self.build_oracle(&probe)?;
        audit_seed_set(oracle.as_ref(), seeds)
    }
}

/// Maps a service-layer error back to the core error type: solver errors
/// unwrap, request-shaped errors become `InvalidConfig`.
fn unwrap_service_error(err: ServiceError) -> CoreError {
    match err {
        ServiceError::Solver(core) => core,
        ServiceError::BadRequest { message } => CoreError::InvalidConfig { message },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_the_first_error_and_names_the_field() {
        let err = Campaign::on(Dataset::Illustrative).budget(0).solve().unwrap_err().to_string();
        assert!(err.contains("'budget'"), "{err}");
        let err = Campaign::on(Dataset::Illustrative).cover(1.5).solve().unwrap_err().to_string();
        assert!(err.contains("'quota'"), "{err}");
        let err = Campaign::on(Dataset::Illustrative)
            .budget(2)
            .tolerance(0.1)
            .solve()
            .unwrap_err()
            .to_string();
        assert!(err.contains("'tolerance'"), "{err}");
        let err = Campaign::on(Dataset::Illustrative)
            .budget(2)
            .weights(vec![1.0, 2.0])
            .solve()
            .unwrap_err()
            .to_string();
        assert!(err.contains("'weights'"), "{err}");
        let err = Campaign::on(Dataset::Illustrative).solve().unwrap_err().to_string();
        assert!(err.contains("'objective'"), "{err}");
        // Later errors do not mask the first one.
        let err = Campaign::on(Dataset::Illustrative)
            .budget(0)
            .disparity_cap(7.0)
            .solve()
            .unwrap_err()
            .to_string();
        assert!(err.contains("'budget'"), "{err}");
    }

    #[test]
    fn spec_assembles_the_full_problem() {
        let spec = Campaign::on(Dataset::Synthetic)
            .deadline(5)
            .estimator(ris(10_000, 3))
            .budget(25)
            .fair(ConcaveWrapper::Log)
            .weights(vec![1.0, 2.0])
            .spec()
            .unwrap();
        assert_eq!(spec.label(), "P4-log");
        assert_eq!(spec.deadline, Some(Deadline::finite(5)));
        assert_eq!(
            spec.fairness,
            FairnessMode::Concave { wrapper: ConcaveWrapper::Log, weights: Some(vec![1.0, 2.0]) }
        );
        assert!(spec.canonical().contains("ris:n=10000,s=3"));
    }

    #[test]
    fn campaigns_solve_against_graphs_datasets_and_caches() {
        // Graph-source campaign.
        let graph = Arc::new(Dataset::Illustrative.build(1).unwrap().graph);
        let direct = Campaign::on_graph(Arc::clone(&graph))
            .deadline(2)
            .estimator(worlds(32, 0))
            .budget(2)
            .solve()
            .unwrap();
        assert_eq!(direct.num_seeds(), 2);

        // Dataset campaign through a shared cache: same answer, one sample.
        let cache = Arc::new(OracleCache::new());
        let base = Campaign::on(Dataset::Illustrative)
            .dataset_seed(1)
            .shared_cache(Arc::clone(&cache))
            .deadline(2)
            .estimator(worlds(32, 0));
        let cached = base.clone().budget(2).solve().unwrap();
        assert_eq!(direct.seeds, cached.seeds);
        for (a, b) in direct.influence.values().iter().zip(cached.influence.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "cached campaign must match the direct solve");
        }
        // A second solve against the same campaign hits the cache.
        let fair = base.clone().budget(2).fair(ConcaveWrapper::Log).solve().unwrap();
        assert!(fair.disparity() <= cached.disparity() + 1e-9);
        assert_eq!(cache.stats().world_misses, 1);

        // Audit rides the same oracle path.
        let audit = base.audit(&direct.seeds).unwrap();
        assert!(audit.total > 0.0);
    }

    #[test]
    fn scenario_campaigns_solve_and_share_the_cache() {
        let spec = ScenarioSpec::sbm(120, 0.08, 0.01).unwrap();
        let cache = Arc::new(OracleCache::new());
        let base = Campaign::on_scenario(spec.clone())
            .shared_cache(Arc::clone(&cache))
            .deadline(4)
            .estimator(worlds(32, 0));
        let unfair = base.clone().budget(2).solve().unwrap();
        let fair = base.clone().budget(2).fair(ConcaveWrapper::Log).solve().unwrap();
        assert!(fair.disparity() <= unfair.disparity() + 1e-9);
        assert_eq!(cache.stats().world_misses, 1, "one scenario, one world pool");

        // The cached campaign answers match a cache-free campaign bitwise.
        let direct = Campaign::on_scenario(spec)
            .deadline(4)
            .estimator(worlds(32, 0))
            .budget(2)
            .solve()
            .unwrap();
        assert_eq!(direct.seeds, unfair.seeds);

        // Presets resolve; unknown presets surface naming the field.
        let preset = Campaign::on_scenario_preset("synthetic-sbm")
            .deadline(3)
            .estimator(worlds(16, 0))
            .budget(2)
            .solve()
            .unwrap();
        assert_eq!(preset.num_seeds(), 2);
        let err = Campaign::on_scenario_preset("twitter").budget(2).solve().unwrap_err();
        assert!(err.to_string().contains("unknown preset 'twitter'"), "{err}");

        // Invalid literal specs are recorded eagerly, naming the field.
        let invalid = ScenarioSpec { num_nodes: 0, ..ScenarioSpec::sbm(10, 0.1, 0.1).unwrap() };
        let err = Campaign::on_scenario(invalid).budget(1).solve().unwrap_err();
        assert!(err.to_string().contains("'nodes'"), "{err}");
    }

    #[test]
    fn linear_threshold_requires_the_worlds_estimator() {
        let err = Campaign::on(Dataset::Illustrative)
            .model(ModelKind::LinearThreshold)
            .estimator(monte_carlo(8, 0))
            .budget(1)
            .solve()
            .unwrap_err()
            .to_string();
        assert!(err.contains("worlds"), "{err}");
        let report = Campaign::on(Dataset::Illustrative)
            .model(ModelKind::LinearThreshold)
            .estimator(worlds(16, 0))
            .deadline(2)
            .budget(1)
            .solve()
            .unwrap();
        assert_eq!(report.num_seeds(), 1);
    }
}

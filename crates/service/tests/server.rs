//! Socket serving tier, end to end over real connections: per-connection
//! ordering under pipelining, byte-identity with the batch path at 1 and 8
//! threads, admin ops over the wire, graceful shutdown via the wire op,
//! admission control, error correlation, and the Unix-domain flavor.

use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tcim_diffusion::ParallelismConfig;
use tcim_service::{
    Client, Json, Request, Server, ServerConfig, ServerReport, ServiceEngine, ShutdownHandle,
};

/// Binds an ephemeral-port TCP server, runs it on a background thread, and
/// hands back the address, the shutdown handle and the join handle.
fn spawn_tcp(
    parallelism: ParallelismConfig,
    config: ServerConfig,
) -> (String, ShutdownHandle, JoinHandle<ServerReport>) {
    let engine = Arc::new(ServiceEngine::new(parallelism));
    let server = Server::bind_tcp("127.0.0.1:0", engine, config).expect("bind ephemeral port");
    let addr = server.tcp_addr().expect("tcp servers know their address").to_string();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// Quick config so shutdown-path tests never sit out a long grace period.
fn quick() -> ServerConfig {
    ServerConfig { shutdown_grace: Duration::from_secs(10), ..Default::default() }
}

/// The pipelined workload: distinct solve/estimate/audit requests whose
/// responses are deterministic (no stats op — that payload is load-bearing
/// telemetry, deliberately excluded from byte-identity checks).
fn workload(client_tag: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..8usize {
        let tau = 2 + (i % 3) as u32;
        let line = match i % 4 {
            0 => format!(
                r#"{{"id":"c{client_tag}-{i}","op":"solve_budget","dataset":"illustrative","deadline":{tau},"samples":64,"budget":2}}"#
            ),
            1 => format!(
                r#"{{"id":"c{client_tag}-{i}","op":"estimate","dataset":"illustrative","deadline":{tau},"samples":64,"seeds":[0,5]}}"#
            ),
            2 => format!(
                r#"{{"id":"c{client_tag}-{i}","op":"audit","dataset":"illustrative","deadline":{tau},"samples":64,"seeds":[1,2]}}"#
            ),
            _ => format!(
                r#"{{"id":"c{client_tag}-{i}","op":"solve_budget","dataset":"illustrative","deadline":{tau},"samples":64,"budget":3,"fair":true}}"#
            ),
        };
        lines.push(line);
    }
    lines
}

/// Serves `lines` through a fresh serial in-process engine — the reference
/// output the socket must reproduce byte-for-byte.
fn serial_reference(lines: &[String]) -> Vec<String> {
    let engine = ServiceEngine::new(ParallelismConfig::serial());
    lines
        .iter()
        .map(|line| engine.serve(&Request::parse_line(line).expect("workload parses")).to_string())
        .collect()
}

#[test]
fn pipelined_clients_get_request_ordered_byte_identical_responses() {
    for threads in [1usize, 8] {
        let (addr, handle, join) = spawn_tcp(ParallelismConfig::fixed(threads), quick());

        // Three concurrent clients, each pipelining its whole workload
        // before reading a single response.
        let clients: Vec<JoinHandle<(Vec<String>, Vec<String>)>> = (0..3)
            .map(|tag| {
                let addr = addr.clone();
                thread::spawn(move || {
                    let lines = workload(tag);
                    let mut client = Client::connect_tcp(&addr).expect("connect");
                    for line in &lines {
                        client.send_line(line).expect("send");
                    }
                    let responses = lines
                        .iter()
                        .map(|_| {
                            client
                                .recv()
                                .expect("recv")
                                .expect("server answers every request")
                                .to_string()
                        })
                        .collect();
                    (lines, responses)
                })
            })
            .collect();

        for client in clients {
            let (lines, responses) = client.join().expect("client thread");
            assert_eq!(
                responses,
                serial_reference(&lines),
                "socket responses must be byte-identical to serial in-process \
                 serving and in request order (threads={threads})"
            );
        }

        handle.trigger();
        let report = join.join().expect("server thread");
        assert!(report.drained, "shutdown must drain with no in-flight work");
        assert_eq!(report.stats.total_connections, 3);
        assert_eq!(report.stats.total_requests, 24);
    }
}

#[test]
fn stats_and_ping_are_served_over_the_wire() {
    let (addr, handle, join) = spawn_tcp(ParallelismConfig::serial(), quick());
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let ping = client
        .call(&Request::parse_line(r#"{"id":1,"op":"ping"}"#).unwrap())
        .expect("ping round trip");
    assert_eq!(ping.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(ping.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(ping.get("protocol").and_then(Json::as_u64), Some(3));

    // Generate some traffic so the stats payload has something to report.
    let solve = client
        .call(
            &Request::parse_line(
                r#"{"id":2,"op":"solve_budget","dataset":"illustrative","deadline":2,"samples":64,"budget":2}"#,
            )
            .unwrap(),
        )
        .expect("solve round trip");
    assert_eq!(solve.get("ok"), Some(&Json::Bool(true)));

    let stats = client
        .call(&Request::parse_line(r#"{"id":3,"op":"stats"}"#).unwrap())
        .expect("stats round trip");
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
    let requests = stats.get("requests").expect("stats carry request counters");
    // The stats request itself is still in flight when its snapshot is
    // taken, so only the finished ping and solve are counted.
    assert_eq!(requests.get("total").and_then(Json::as_u64), Some(2));
    assert_eq!(requests.get("errors").and_then(Json::as_u64), Some(0));
    assert!(requests.get("p50_us").and_then(Json::as_u64).is_some(), "p50 latency on the wire");
    assert!(requests.get("p99_us").and_then(Json::as_u64).is_some(), "p99 latency on the wire");
    let cache = stats.get("cache").expect("stats carry cache counters");
    assert!(
        cache.get("oracles").and_then(|o| o.get("hit_rate")).is_some(),
        "oracle hit rate on the wire"
    );
    let connections = stats.get("connections").expect("stats carry connection gauges");
    assert_eq!(connections.get("active").and_then(Json::as_u64), Some(1));

    handle.trigger();
    join.join().expect("server thread");
}

#[test]
fn shutdown_op_answers_then_drains_the_server() {
    let (addr, _handle, join) = spawn_tcp(ParallelismConfig::serial(), quick());
    let mut client = Client::connect_tcp(&addr).expect("connect");

    // Pipeline two solves and the shutdown: all three must be answered, in
    // order, before the server exits.
    for line in [
        r#"{"id":"a","op":"solve_budget","dataset":"illustrative","deadline":2,"samples":64,"budget":2}"#,
        r#"{"id":"b","op":"estimate","dataset":"illustrative","deadline":2,"samples":64,"seeds":[0]}"#,
        r#"{"id":"c","op":"shutdown"}"#,
    ] {
        client.send_line(line).expect("send");
    }
    let ids: Vec<String> = (0..3)
        .map(|_| {
            let response = client.recv().expect("recv").expect("answered before shutdown");
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
            response.get("id").expect("ids echoed").to_string()
        })
        .collect();
    assert_eq!(ids, vec![r#""a""#, r#""b""#, r#""c""#]);

    let report = join.join().expect("server thread");
    assert!(report.drained, "the shutdown op must drain in-flight work");
}

#[test]
fn connections_past_the_cap_get_a_parseable_rejection() {
    let config = ServerConfig { max_connections: 1, ..quick() };
    let (addr, handle, join) = spawn_tcp(ParallelismConfig::serial(), config);

    // First connection registers (ping proves it is fully admitted).
    let mut first = Client::connect_tcp(&addr).expect("connect");
    let pong = first.call(&Request::parse_line(r#"{"id":1,"op":"ping"}"#).unwrap()).unwrap();
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));

    // Second connection is over the cap: one rejection line, then EOF.
    let mut second = Client::connect_tcp(&addr).expect("tcp connect still succeeds");
    let rejection = second
        .recv()
        .expect("rejection line parses")
        .expect("the server writes the rejection before closing");
    assert_eq!(rejection.get("ok"), Some(&Json::Bool(false)));
    let error = rejection.get("error").and_then(Json::as_str).expect("rejection names the cause");
    assert!(error.contains("connection capacity (1)"), "got: {error}");
    assert_eq!(second.recv().expect("clean EOF after rejection"), None);

    handle.trigger();
    let report = join.join().expect("server thread");
    assert_eq!(report.stats.rejected_connections, 1);
    assert_eq!(report.stats.peak_connections, 1);
}

#[test]
fn failed_lines_echo_salvaged_ids_and_per_connection_line_numbers() {
    let (addr, handle, join) = spawn_tcp(ParallelismConfig::serial(), quick());
    let mut client = Client::connect_tcp(&addr).expect("connect");

    for line in [
        r#"{"id":1,"op":"ping"}"#,
        "# comments and blank lines do not advance the request counter",
        r#"{"id":"x7","op":"warp"}"#,
        "not json at all",
        r#"{"id":2,"op":"ping"}"#,
    ] {
        client.send_line(line).expect("send");
    }

    let ok1 = client.recv().unwrap().unwrap();
    assert_eq!(ok1.get("id").and_then(Json::as_u64), Some(1));

    // The bad op keeps its id and reports request ordinal 2 (comments and
    // blanks are skipped, matching batch-mode line accounting).
    let bad_op = client.recv().unwrap().unwrap();
    assert_eq!(bad_op.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(bad_op.get("id").and_then(Json::as_str), Some("x7"));
    assert_eq!(bad_op.get("line").and_then(Json::as_u64), Some(2));

    // The unparsable line has no id to salvage but still gets its ordinal.
    let bad_json = client.recv().unwrap().unwrap();
    assert_eq!(bad_json.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(bad_json.get("id"), None);
    assert_eq!(bad_json.get("line").and_then(Json::as_u64), Some(3));

    let ok2 = client.recv().unwrap().unwrap();
    assert_eq!(ok2.get("id").and_then(Json::as_u64), Some(2));

    handle.trigger();
    let report = join.join().expect("server thread");
    assert_eq!(report.stats.parse_errors, 2);
}

#[cfg(unix)]
#[test]
fn unix_domain_sockets_serve_and_clean_up_their_path() {
    let path = std::env::temp_dir().join(format!("tcim-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let engine = Arc::new(ServiceEngine::new(ParallelismConfig::serial()));
    let server = Server::bind_unix(&path, engine, quick()).expect("bind unix socket");
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect_unix(&path).expect("connect over unix socket");
    let line = r#"{"id":"u1","op":"solve_budget","dataset":"illustrative","deadline":2,"samples":64,"budget":2}"#;
    let response =
        client.call(&Request::parse_line(line).unwrap()).expect("solve over unix socket");
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        response.to_string(),
        serial_reference(&[line.to_string()])[0],
        "unix-domain responses must match the in-process reference byte-for-byte"
    );

    handle.trigger();
    let report = join.join().expect("server thread");
    assert!(report.drained);
    assert!(!path.exists(), "shutdown must unlink the socket path");
}

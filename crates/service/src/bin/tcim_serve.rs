//! The campaign-serving daemon, in two explicit modes:
//!
//! * **Batch** (default): read newline-delimited requests from stdin (or
//!   `--input FILE`), serve them as one batch over a shared oracle cache,
//!   and write one response per line to stdout, in request order.
//! * **Socket**: `--listen ADDR` (TCP) or `--listen-unix PATH` (Unix-domain)
//!   serves the same protocol over persistent connections with pipelining,
//!   backpressure and graceful shutdown (SIGINT/SIGTERM or a
//!   `{"op":"shutdown"}` request drain in-flight work before exit).
//!
//! ```text
//! tcim_serve [--input FILE | --listen ADDR | --listen-unix PATH]
//!            [--threads N] [--quiet]
//!            [--cache-bytes SIZE] [--cache-shards N]
//!            [--max-connections N] [--max-inflight N] [--window N]
//!            [--shutdown-grace-ms MS]
//! ```
//!
//! `--cache-bytes` sizes the oracle cache's byte budget (accepts a plain
//! byte count or a `K`/`M`/`G` suffix, powers of 1024 — e.g. `256M`) and
//! `--cache-shards` its shard count; both work in batch and socket mode and
//! default to 256 MiB over 8 shards (see `docs/CACHE.md` for sizing
//! guidance). The server knobs (`--max-connections`, `--max-inflight`,
//! `--window`, `--shutdown-grace-ms`) require a listen mode; every flag is
//! validated eagerly and errors name the offending flag. Blank lines and `#` comment
//! lines are skipped in both modes. A line that fails to parse produces an
//! `"ok": false` response (echoing the request's `id` when one could be
//! salvaged, plus its line number) instead of aborting.
//!
//! Stats go to stderr, never stdout — stdout is the protocol surface and
//! must stay byte-identical across thread counts, which CI checks against a
//! golden file. `--quiet` suppresses the stderr summary.
//!
//! Exit codes: 0 on success (socket mode: shutdown drained cleanly), 1 on
//! failed slots (batch) or an expired shutdown grace period (socket), 2 on
//! usage errors.

use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use tcim_diffusion::ParallelismConfig;
use tcim_service::protocol::error_response_at;
use tcim_service::{
    install_ctrl_c, CacheConfig, OracleCache, Request, Server, ServerConfig, ServiceEngine,
};

enum Mode {
    /// One batch from stdin or a file; exit when served.
    Batch { input: Option<String> },
    /// Persistent TCP listener.
    ListenTcp { addr: String },
    /// Persistent Unix-domain listener.
    #[cfg(unix)]
    ListenUnix { path: String },
}

struct Cli {
    mode: Mode,
    parallelism: ParallelismConfig,
    quiet: bool,
    cache: CacheConfig,
    server: ServerConfig,
}

/// Parses a byte size: a plain integer, optionally suffixed with `K`, `M`
/// or `G` (case-insensitive, powers of 1024). Must be at least 1 byte.
fn parse_bytes(raw: &str, flag: &str) -> Result<usize, String> {
    let bad = || {
        format!(
            "invalid value '{raw}' for {flag} \
             (expected a byte count, optionally suffixed K, M or G)"
        )
    };
    let (digits, multiplier) = match raw.char_indices().last() {
        Some((i, 'k' | 'K')) => (&raw[..i], 1usize << 10),
        Some((i, 'm' | 'M')) => (&raw[..i], 1usize << 20),
        Some((i, 'g' | 'G')) => (&raw[..i], 1usize << 30),
        _ => (raw, 1),
    };
    let count: usize = digits.parse().map_err(|_| bad())?;
    match count.checked_mul(multiplier) {
        Some(bytes) if bytes >= 1 => Ok(bytes),
        _ => Err(bad()),
    }
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        mode: Mode::Batch { input: None },
        parallelism: ParallelismConfig::auto(),
        quiet: false,
        cache: CacheConfig::default(),
        server: ServerConfig::default(),
    };
    let mut mode_flag: Option<String> = None;
    let mut server_flags: Vec<String> = Vec::new();

    let set_mode = |mode_flag: &mut Option<String>, flag: &str, mode: Mode| {
        if let Some(previous) = mode_flag.as_deref() {
            return Err(format!(
                "flag '{flag}' conflicts with '{previous}' (pick one mode: \
                 --input/stdin, --listen or --listen-unix)"
            ));
        }
        *mode_flag = Some(flag.to_string());
        Ok(mode)
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("missing value for {flag}"))
        };
        let positive = |raw: String, flag: &str| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!(
                    "invalid value '{raw}' for {flag} (expected an integer of at least 1)"
                )),
            }
        };
        match flag.as_str() {
            "--input" => {
                let path = value("--input")?;
                cli.mode = set_mode(&mut mode_flag, "--input", Mode::Batch { input: Some(path) })?;
            }
            "--listen" => {
                let addr = value("--listen")?;
                cli.mode = set_mode(&mut mode_flag, "--listen", Mode::ListenTcp { addr })?;
            }
            "--listen-unix" => {
                let path = value("--listen-unix")?;
                #[cfg(unix)]
                {
                    cli.mode =
                        set_mode(&mut mode_flag, "--listen-unix", Mode::ListenUnix { path })?;
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err("--listen-unix is only available on Unix platforms".to_string());
                }
            }
            "--threads" => {
                let raw = value("--threads")?;
                let threads: usize = raw.parse().map_err(|_| {
                    format!("invalid value '{raw}' for --threads (expected an integer; 0 = auto)")
                })?;
                cli.parallelism = ParallelismConfig::fixed(threads);
            }
            "--cache-bytes" => {
                cli.cache.max_bytes = parse_bytes(&value("--cache-bytes")?, "--cache-bytes")?;
            }
            "--cache-shards" => {
                cli.cache.shards = positive(value("--cache-shards")?, flag.as_str())?;
            }
            "--max-connections" => {
                cli.server.max_connections = positive(value("--max-connections")?, flag.as_str())?;
                server_flags.push(flag);
            }
            "--max-inflight" => {
                cli.server.max_inflight = positive(value("--max-inflight")?, flag.as_str())?;
                server_flags.push(flag);
            }
            "--window" => {
                cli.server.window = positive(value("--window")?, flag.as_str())?;
                server_flags.push(flag);
            }
            "--shutdown-grace-ms" => {
                let raw = value("--shutdown-grace-ms")?;
                let ms: u64 = raw.parse().map_err(|_| {
                    format!(
                        "invalid value '{raw}' for --shutdown-grace-ms \
                         (expected a duration in milliseconds)"
                    )
                })?;
                cli.server.shutdown_grace = Duration::from_millis(ms);
                server_flags.push(flag);
            }
            "--quiet" => cli.quiet = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --input, --listen, --listen-unix, \
                     --threads, --cache-bytes, --cache-shards, --max-connections, \
                     --max-inflight, --window, --shutdown-grace-ms or --quiet)"
                ))
            }
        }
    }

    if matches!(cli.mode, Mode::Batch { .. }) {
        if let Some(flag) = server_flags.first() {
            return Err(format!(
                "flag '{flag}' requires a listen mode (--listen or --listen-unix); \
                 batch mode has no server to configure"
            ));
        }
    }
    Ok(cli)
}

fn read_input(input: Option<&str>) -> Result<String, String> {
    match input {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read request file '{path}': {err}")),
        None => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|err| format!("cannot read requests from stdin: {err}"))?;
            Ok(text)
        }
    }
}

/// The original stdin/file pipeline: parse everything first so malformed
/// lines keep their slot in the response stream while well-formed ones
/// still batch together.
fn run_batch(engine: &ServiceEngine, input: Option<&str>, quiet: bool) -> Result<bool, String> {
    let text = read_input(input)?;

    type Slot = Result<Request, (Option<tcim_service::Json>, u64, String)>;
    let mut parsed: Vec<Slot> = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parsed.push(Request::parse_line_correlated(line).map_err(|(id, err)| {
            engine.stats().record_parse_error();
            (id, number as u64 + 1, err.to_string())
        }));
    }

    let requests: Vec<Request> = parsed.iter().filter_map(|p| p.as_ref().ok()).cloned().collect();
    let mut served = engine.serve_batch(&requests).into_iter();
    let mut failures = 0usize;
    for slot in &parsed {
        let response = match slot {
            Ok(_) => served.next().expect("one response per request"),
            Err((id, line, message)) => error_response_at(id.as_ref(), Some(*line), message),
        };
        if response.get("ok").and_then(|ok| ok.as_bool()) != Some(true) {
            failures += 1;
        }
        println!("{response}");
    }

    if !quiet {
        eprintln!("{}", engine.stats_snapshot().summary_line());
    }
    Ok(failures == 0)
}

/// The socket serving tier: bind, announce on stderr, serve until shutdown,
/// log the final stats snapshot. Returns whether the drain completed.
fn run_socket(engine: Arc<ServiceEngine>, cli: &Cli) -> Result<bool, String> {
    install_ctrl_c();
    let server = match &cli.mode {
        Mode::ListenTcp { addr } => Server::bind_tcp(addr.as_str(), engine, cli.server.clone())
            .map_err(|err| format!("cannot listen on '{addr}': {err}"))?,
        #[cfg(unix)]
        Mode::ListenUnix { path } => Server::bind_unix(path, engine, cli.server.clone())
            .map_err(|err| format!("cannot listen on unix socket '{path}': {err}"))?,
        Mode::Batch { .. } => unreachable!("socket mode only"),
    };
    if !cli.quiet {
        match (server.tcp_addr(), &cli.mode) {
            (Some(addr), _) => eprintln!("listening on {addr}"),
            #[cfg(unix)]
            (None, Mode::ListenUnix { path }) => eprintln!("listening on unix socket {path}"),
            (None, _) => {}
        }
    }
    let report = server.run().map_err(|err| format!("server error: {err}"))?;
    if !cli.quiet {
        eprintln!("{}", report.stats.summary_line());
        if !report.drained {
            eprintln!("shutdown grace period expired with connections still active");
        }
    }
    Ok(report.drained)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    let engine =
        ServiceEngine::with_cache(Arc::new(OracleCache::with_config(cli.cache)), cli.parallelism);
    let clean = match &cli.mode {
        Mode::Batch { input } => run_batch(&engine, input.as_deref(), cli.quiet),
        _ => run_socket(Arc::new(engine), &cli),
    };
    match clean {
        // Scriptability: a batch containing any failed slot, or a shutdown
        // whose grace period expired, exits non-zero.
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_bytes;

    #[test]
    fn byte_sizes_parse_with_and_without_suffixes() {
        assert_eq!(parse_bytes("65536", "--cache-bytes").unwrap(), 65536);
        assert_eq!(parse_bytes("64K", "--cache-bytes").unwrap(), 64 * 1024);
        assert_eq!(parse_bytes("64k", "--cache-bytes").unwrap(), 64 * 1024);
        assert_eq!(parse_bytes("256M", "--cache-bytes").unwrap(), 256 * 1024 * 1024);
        assert_eq!(parse_bytes("2G", "--cache-bytes").unwrap(), 2 * 1024 * 1024 * 1024);
        for bad in ["", "K", "0", "-1", "1.5M", "64KB", "18446744073709551615G"] {
            let err = parse_bytes(bad, "--cache-bytes").unwrap_err();
            assert!(err.contains("--cache-bytes"), "{err}");
        }
    }
}

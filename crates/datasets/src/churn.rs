//! Deterministic edge-churn sequences — the temporal side of the scenario
//! space.
//!
//! A [`ChurnConfig`] turns any base graph into a reproducible stream of
//! mutation steps: each step is a batch of [`MutationOp`]s that is valid
//! against the graph produced by the previous step (no dangling endpoints,
//! no self-loops, no duplicate parallel edges, removals and reweights only
//! of edges that exist). Steps map one-to-one onto `Graph::apply` calls, so
//! replaying a sequence advances `graph_version` by exactly one per step.
//!
//! The generator is a pure function of `(base graph, ChurnConfig)`: like
//! every generator in this crate it draws from a [`StdRng`] seeded only
//! from configuration, so a churn workload can be named in a test or a
//! benchmark by its config alone and replayed bitwise anywhere. The service
//! layer's differential harness (`crates/service/tests/churn.rs`) leans on
//! this to drive the same mutation stream through an incremental engine and
//! a cold-rebuild engine and compare responses.
//!
//! ```
//! use tcim_datasets::churn::ChurnConfig;
//! use tcim_datasets::scenario::ScenarioSpec;
//!
//! let base = ScenarioSpec::barabasi_albert(60, 2).unwrap().build(7).unwrap();
//! let sequence = ChurnConfig::new(4, 3, 11).generate(&base).unwrap();
//! assert_eq!(sequence.steps.len(), 4);
//! let graphs = sequence.replay(&base).unwrap();
//! assert_eq!(graphs.last().unwrap().version(), 4);
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tcim_graph::{Graph, MutationOp, NodeId, Result};

/// Probability assigned to inserted and reweighted edges: drawn uniformly
/// from this range, bounded away from 0 and 1 so mutated edges neither
/// vanish from nor saturate the live-edge distribution.
const CHURN_PROBABILITY_RANGE: std::ops::Range<f64> = 0.05..0.95;

/// How many random `(source, target)` draws an `add` attempts before the
/// step falls back to reweighting an existing edge (only reachable on
/// near-complete graphs).
const ADD_ATTEMPTS: usize = 64;

/// Shape of a deterministic churn sequence: how many version steps, how
/// many edits per step, and the seed naming the exact edit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Number of mutation steps (each advances `graph_version` by one).
    pub steps: usize,
    /// Number of edge edits bundled into each step.
    pub ops_per_step: usize,
    /// Seed of the edit stream.
    pub seed: u64,
}

impl ChurnConfig {
    /// A config with the given shape.
    pub fn new(steps: usize, ops_per_step: usize, seed: u64) -> ChurnConfig {
        ChurnConfig { steps, ops_per_step, seed }
    }

    /// Generates the churn sequence for `base`.
    ///
    /// Every emitted op is valid at its position: the generator tracks the
    /// evolving edge set, so adds never duplicate an existing edge and
    /// removals/reweights always name a live one. The op-kind mix leans on
    /// the current state — an empty or nearly drained graph only grows.
    ///
    /// # Errors
    ///
    /// Returns an error when the base graph has fewer than two nodes (no
    /// non-self-loop edge can be named) or the config asks for steps with
    /// zero ops.
    pub fn generate(&self, base: &Graph) -> Result<ChurnSequence> {
        let n = base.num_nodes() as u32;
        if n < 2 {
            return Err(tcim_graph::GraphError::InvalidParameter {
                message: format!("churn requires at least 2 nodes, got {n}"),
            });
        }
        if self.steps > 0 && self.ops_per_step == 0 {
            return Err(tcim_graph::GraphError::InvalidParameter {
                message: "churn steps must carry at least one op".to_string(),
            });
        }
        // The evolving edge set: a dense membership check for adds plus a
        // flat list for uniform removal/reweight picks.
        let mut edges: Vec<(u32, u32)> =
            base.edges().map(|(source, target, _)| (source.0, target.0)).collect();
        let mut present: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        let mut steps = Vec::with_capacity(self.steps);
        for step in 0..self.steps {
            // One RNG per step, derived from seed + step index (the same
            // `base + index` discipline the diffusion samplers follow), so a
            // prefix of the sequence never depends on how long it runs.
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(step as u64));
            let mut ops = Vec::with_capacity(self.ops_per_step);
            for _ in 0..self.ops_per_step {
                ops.push(next_op(&mut rng, n, &mut edges, &mut present));
            }
            steps.push(ops);
        }
        Ok(ChurnSequence { steps })
    }
}

/// Draws the next valid mutation, updating the tracked edge set.
fn next_op(
    rng: &mut StdRng,
    n: u32,
    edges: &mut Vec<(u32, u32)>,
    present: &mut std::collections::HashSet<(u32, u32)>,
) -> MutationOp {
    // Keep the graph from draining: with two or fewer edges left, only grow.
    let kind = if edges.len() <= 2 { 0 } else { rng.random_range(0u32..3) };
    match kind {
        0 => {
            for _ in 0..ADD_ATTEMPTS {
                let source = rng.random_range(0u32..n);
                let target = rng.random_range(0u32..n);
                if source == target || present.contains(&(source, target)) {
                    continue;
                }
                edges.push((source, target));
                present.insert((source, target));
                return MutationOp::AddEdge {
                    source: NodeId(source),
                    target: NodeId(target),
                    probability: rng.random_range(CHURN_PROBABILITY_RANGE),
                };
            }
            // Near-complete graph: fall back to a reweight (always valid
            // here — a graph this dense has edges to spare).
            let (source, target) = edges[rng.random_range(0..edges.len())];
            MutationOp::Reweight {
                source: NodeId(source),
                target: NodeId(target),
                probability: rng.random_range(CHURN_PROBABILITY_RANGE),
            }
        }
        1 => {
            let at = rng.random_range(0..edges.len());
            let (source, target) = edges.swap_remove(at);
            present.remove(&(source, target));
            MutationOp::RemoveEdge { source: NodeId(source), target: NodeId(target) }
        }
        _ => {
            let (source, target) = edges[rng.random_range(0..edges.len())];
            MutationOp::Reweight {
                source: NodeId(source),
                target: NodeId(target),
                probability: rng.random_range(CHURN_PROBABILITY_RANGE),
            }
        }
    }
}

/// A generated churn sequence: one op batch per version step.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSequence {
    /// The mutation batches, in application order. Batch `i` is valid
    /// against the graph produced by batches `0..i` applied to the base.
    pub steps: Vec<Vec<MutationOp>>,
}

impl ChurnSequence {
    /// Replays the sequence against `base`, returning the graph after each
    /// step (`result[i]` has `version() == base.version() + i + 1`).
    ///
    /// # Errors
    ///
    /// Propagates `Graph::apply` errors — unreachable for a sequence
    /// generated against the same base, but a sequence is plain data and a
    /// caller may replay it against anything.
    pub fn replay(&self, base: &Graph) -> Result<Vec<Graph>> {
        let mut graphs = Vec::with_capacity(self.steps.len());
        let mut current = base.clone();
        for ops in &self.steps {
            current = current.apply(ops)?;
            graphs.push(current.clone());
        }
        Ok(graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::scenario::ScenarioSpec;

    fn base() -> Graph {
        ScenarioSpec::sbm(80, 0.08, 0.02).unwrap().build(5).unwrap()
    }

    #[test]
    fn sequences_are_deterministic_and_seed_sensitive() {
        let graph = base();
        let a = ChurnConfig::new(6, 4, 9).generate(&graph).unwrap();
        let b = ChurnConfig::new(6, 4, 9).generate(&graph).unwrap();
        assert_eq!(a, b);
        let c = ChurnConfig::new(6, 4, 10).generate(&graph).unwrap();
        assert_ne!(a, c);
        // Step prefixes are stable: a longer run starts with the short one.
        let long = ChurnConfig::new(8, 4, 9).generate(&graph).unwrap();
        assert_eq!(long.steps[..6], a.steps[..]);
    }

    #[test]
    fn every_step_applies_cleanly_and_bumps_the_version_once() {
        let graph = base();
        let sequence = ChurnConfig::new(10, 5, 3).generate(&graph).unwrap();
        assert_eq!(sequence.steps.len(), 10);
        assert!(sequence.steps.iter().all(|ops| ops.len() == 5));
        // All three kinds appear in a mixed run of this size.
        let labels: std::collections::HashSet<&str> =
            sequence.steps.iter().flatten().map(|op| op.label()).collect();
        assert_eq!(labels.len(), 3, "expected add/remove/reweight, got {labels:?}");
        let graphs = sequence.replay(&graph).unwrap();
        for (i, mutated) in graphs.iter().enumerate() {
            assert_eq!(mutated.version(), i as u64 + 1);
            assert_eq!(mutated.num_nodes(), graph.num_nodes());
        }
    }

    #[test]
    fn churn_grows_a_drained_graph_instead_of_failing() {
        // A 2-node, 1-edge graph: removals are fenced off, so a long run
        // only ever adds the missing reverse edge or reweights.
        let tiny = ScenarioSpec::sbm(2, 1.0, 1.0).unwrap().build(1).unwrap();
        let sequence = ChurnConfig::new(5, 2, 2).generate(&tiny).unwrap();
        sequence.replay(&tiny).unwrap();
        assert!(sequence.steps.iter().flatten().all(|op| op.label() != "remove"));
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let single = ScenarioSpec::sbm(2, 1.0, 1.0).unwrap().build(1).unwrap();
        let err = ChurnConfig::new(3, 0, 1).generate(&single).unwrap_err().to_string();
        assert!(err.contains("at least one op"), "{err}");
    }
}

//! The dynamic-graph differential harness: replay interleaved mutation and
//! solve traffic through an engine that keeps its caches warm (so the
//! incremental RIS-refresh and world-patch paths engage) and compare every
//! response byte-for-byte against a from-scratch engine that rebuilds the
//! mutated graph cold. The two must never diverge — at any thread count,
//! over any valid churn sequence (proptest drives randomized, shrinkable
//! ones) — because incremental refresh is an optimization, not a semantic.

use proptest::prelude::*;
use tcim_datasets::churn::ChurnConfig;
use tcim_datasets::{Dataset, ScenarioSpec};
use tcim_diffusion::ParallelismConfig;
use tcim_graph::{Graph, MutationOp, NodeId};
use tcim_service::protocol::scenario_to_json;
use tcim_service::{DatasetSpec, Json, Op, Request, ServiceEngine};

const DATASET_SEED: u64 = 5;

fn sbm() -> ScenarioSpec {
    ScenarioSpec::sbm(60, 0.1, 0.02).unwrap()
}

fn ba() -> ScenarioSpec {
    ScenarioSpec::barabasi_albert(60, 2).unwrap()
}

fn dataset_spec(spec: &ScenarioSpec) -> DatasetSpec {
    DatasetSpec { dataset: Dataset::Scenario(spec.clone()), seed: DATASET_SEED }
}

/// A P1–P6 spread over the worlds and RIS estimators — the query mix every
/// graph version is probed with.
fn solve_requests(spec: &ScenarioSpec) -> Vec<Request> {
    let scenario = scenario_to_json(spec).to_string();
    [
        format!(
            r#"{{"id":"p1","op":"solve_budget","scenario":{scenario},"dataset_seed":{DATASET_SEED},"deadline":4,"samples":16,"estimator_seed":3,"budget":3}}"#
        ),
        format!(
            r#"{{"id":"p4","op":"solve_budget","scenario":{scenario},"dataset_seed":{DATASET_SEED},"deadline":4,"samples":16,"estimator_seed":3,"budget":3,"fair":true,"wrapper":"log"}}"#
        ),
        format!(
            r#"{{"id":"p5","op":"solve_cover","scenario":{scenario},"dataset_seed":{DATASET_SEED},"deadline":4,"samples":16,"estimator_seed":3,"quota":0.05,"disparity_cap":0.9}}"#
        ),
        format!(
            r#"{{"id":"ris","op":"solve_budget","scenario":{scenario},"dataset_seed":{DATASET_SEED},"deadline":4,"estimator":"ris","samples":256,"estimator_seed":3,"budget":3}}"#
        ),
        format!(
            r#"{{"id":"est","op":"estimate","scenario":{scenario},"dataset_seed":{DATASET_SEED},"deadline":4,"estimator":"ris","samples":256,"estimator_seed":3,"seeds":[0,5,9]}}"#
        ),
        format!(
            r#"{{"id":"audit","op":"audit","scenario":{scenario},"dataset_seed":{DATASET_SEED},"deadline":4,"samples":16,"estimator_seed":3,"seeds":[1,2]}}"#
        ),
    ]
    .iter()
    .map(|line| Request::parse_line(line).unwrap())
    .collect()
}

/// Interleaves the solve spread with mutation steps: probe version 0, then
/// after every step probe the new version again.
fn churn_batch(spec: &ScenarioSpec, steps: &[Vec<MutationOp>]) -> Vec<Request> {
    let mut requests = solve_requests(spec);
    for (i, ops) in steps.iter().enumerate() {
        requests.push(Request::mutate(
            Some(Json::from(format!("m{i}").as_str())),
            dataset_spec(spec),
            ops.clone(),
        ));
        requests.extend(solve_requests(spec));
    }
    requests
}

fn render(responses: Vec<Json>) -> Vec<String> {
    responses.into_iter().map(|r| r.to_string()).collect()
}

/// The from-scratch answer to every request: each one is served by a fresh
/// engine that first replays the mutations preceding it (so the graph is at
/// the right version) and builds everything else cold.
fn cold_reference(batch: &[Request]) -> Vec<String> {
    batch
        .iter()
        .enumerate()
        .map(|(i, request)| {
            let engine = ServiceEngine::new(ParallelismConfig::serial());
            for prior in &batch[..i] {
                if matches!(prior.op, Op::Mutate { .. }) {
                    let ack = engine.serve(prior);
                    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "replay failed: {ack}");
                }
            }
            engine.serve(request).to_string()
        })
        .collect()
}

#[test]
fn interleaved_churn_matches_cold_rebuilds_at_every_thread_count() {
    for spec in [sbm(), ba()] {
        let base = spec.build(DATASET_SEED).unwrap();
        let steps = ChurnConfig::new(3, 2, 17).generate(&base).unwrap().steps;
        let batch = churn_batch(&spec, &steps);
        let cold = cold_reference(&batch);
        assert!(
            cold.iter().all(|line| line.contains(r#""ok":true"#)),
            "cold reference must serve the whole batch"
        );
        for threads in [1usize, 2, 8] {
            let engine = ServiceEngine::new(ParallelismConfig::fixed(threads));
            let served = render(engine.serve_batch(&batch));
            assert_eq!(served, cold, "incremental diverged from cold at {threads} threads");
            // The comparison is only meaningful if the incremental paths
            // actually ran: every step refreshes the resident RIS pool, and
            // every step past the first patches the keyed world pool.
            assert_eq!(engine.cache().ris_refreshes(), steps.len() as u64);
            assert_eq!(engine.cache().world_patches(), steps.len() as u64 - 1);
            assert_eq!(engine.cache().mutations(), steps.len() as u64);
        }
    }
}

/// The first `count` node pairs with no edge between them (and no
/// self-loop), scanning in row order — deterministic mutation material.
fn absent_pairs(graph: &Graph, count: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::with_capacity(count);
    'outer: for u in graph.nodes() {
        for v in graph.nodes() {
            if u != v && !graph.out_neighbors(u).any(|w| w == v) {
                pairs.push((u, v));
                if pairs.len() == count {
                    break 'outer;
                }
            }
        }
    }
    pairs
}

#[test]
fn mutate_responses_echo_strictly_increasing_versions() {
    let spec = DatasetSpec::parse("illustrative", 42).unwrap();
    let graph = spec.dataset.build(42).unwrap().graph;
    let pairs = absent_pairs(&graph, 3);
    let engine = ServiceEngine::new(ParallelismConfig::serial());
    let mut last_version = 0;
    for (i, &(source, target)) in pairs.iter().enumerate() {
        let ops = vec![MutationOp::AddEdge { source, target, probability: 0.4 }];
        let response = engine.serve(&Request::mutate(None, spec.clone(), ops));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        let version = response.get("graph_version").unwrap().as_u64().unwrap();
        assert!(version > last_version, "graph_version must strictly increase");
        assert_eq!(version, i as u64 + 1, "one step per mutate request");
        last_version = version;
        assert_eq!(
            response.get("edges").unwrap().as_u64().unwrap(),
            graph.num_edges() as u64 + i as u64 + 1
        );
        assert_eq!(response.get("nodes").unwrap().as_u64().unwrap(), graph.num_nodes() as u64);
        assert_eq!(response.get("applied").unwrap().as_u64().unwrap(), 1);
    }
    assert_eq!(engine.cache().graph_version(&spec), 3);
}

#[test]
fn rejected_mutations_leave_the_served_graph_untouched() {
    let spec = DatasetSpec::parse("illustrative", 42).unwrap();
    let engine = ServiceEngine::new(ParallelismConfig::serial());
    let solve = Request::parse_line(
        r#"{"op":"solve_budget","dataset":"illustrative","deadline":2,"samples":32,"budget":2}"#,
    )
    .unwrap();
    let before = engine.serve(&solve).to_string();

    // Removing an absent edge fails mid-batch (op 2 of 2): no version is
    // minted, nothing is purged, and the answer does not move.
    let graph = engine.cache().graph(&spec).unwrap();
    let (source, target) = absent_pairs(&graph, 1)[0];
    let response = engine.serve(&Request::mutate(
        None,
        spec.clone(),
        vec![
            MutationOp::AddEdge { source, target, probability: 0.5 },
            MutationOp::RemoveEdge { source: target, target: source },
        ],
    ));
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response}");
    assert!(
        response.get("error").unwrap().as_str().unwrap().contains("mutation rejected"),
        "{response}"
    );
    assert_eq!(engine.cache().graph_version(&spec), 0);
    assert_eq!(engine.serve(&solve).to_string(), before);

    // A wire-level batch with an ill-formed mutate line still answers every
    // line, correlated — and the malformed line never reaches the cache.
    let parse_err = Request::parse_line(r#"{"op":"mutate","dataset":"illustrative","ops":[]}"#)
        .unwrap_err()
        .to_string();
    assert!(parse_err.contains("must not be empty"), "{parse_err}");
    assert_eq!(engine.cache().mutations(), 0);
}

/// Shrinkable raw material for a churn sequence: `(kind, a, b, p‰)` tuples
/// repaired against the evolving graph into always-valid mutations.
fn churn_descriptors() -> impl Strategy<Value = Vec<(u8, u32, u32, u32)>> {
    proptest::collection::vec((0u8..3, 0u32..10_000, 0u32..10_000, 0u32..1000), 1..7)
}

/// Maps one descriptor to a valid mutation for `graph`: endpoints are taken
/// modulo the node count, `remove`/`reweight` pick an existing edge by
/// index, and `add` scans from the hinted pair for the first absent
/// non-loop slot (falling back to reweight on a complete graph).
fn repair(descriptor: (u8, u32, u32, u32), graph: &Graph) -> MutationOp {
    let (kind, a, b, p_mil) = descriptor;
    let n = graph.num_nodes() as u32;
    let probability = 0.05 + f64::from(p_mil) / 1000.0 * 0.9;
    let edges: Vec<(NodeId, NodeId)> =
        graph.edges().map(|(source, target, _)| (source, target)).collect();
    let kind = if edges.is_empty() { 0 } else { kind };
    match kind {
        0 => {
            for offset in 0..u64::from(n) * u64::from(n) {
                let flat = (u64::from(a % n) * u64::from(n) + u64::from(b % n) + offset)
                    % (u64::from(n) * u64::from(n));
                let (u, v) =
                    (NodeId((flat / u64::from(n)) as u32), NodeId((flat % u64::from(n)) as u32));
                if u != v && !graph.out_neighbors(u).any(|w| w == v) {
                    return MutationOp::AddEdge { source: u, target: v, probability };
                }
            }
            let (source, target) = edges[a as usize % edges.len()];
            MutationOp::Reweight { source, target, probability }
        }
        1 => {
            let (source, target) = edges[a as usize % edges.len()];
            MutationOp::RemoveEdge { source, target }
        }
        _ => {
            let (source, target) = edges[a as usize % edges.len()];
            MutationOp::Reweight { source, target, probability }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over arbitrary valid churn sequences: `mutate → solve` equals
    /// `rebuild → solve` byte-for-byte at 1, 2 and 8 threads, and
    /// `graph_version` strictly increases one step per mutation.
    #[test]
    fn mutate_then_solve_equals_rebuild_then_solve(descriptors in churn_descriptors()) {
        let spec = ScenarioSpec::sbm(40, 0.12, 0.03).unwrap();
        let mut graph = spec.build(DATASET_SEED).unwrap();
        let mut steps = Vec::with_capacity(descriptors.len());
        for descriptor in descriptors {
            let op = repair(descriptor, &graph);
            graph = graph.apply(std::slice::from_ref(&op)).expect("repaired ops are valid");
            steps.push(vec![op]);
        }
        let batch = churn_batch(&spec, &steps);
        let cold = cold_reference(&batch);
        for threads in [1usize, 2, 8] {
            let engine = ServiceEngine::new(ParallelismConfig::fixed(threads));
            let served = render(engine.serve_batch(&batch));
            prop_assert!(served == cold, "diverged at {} threads", threads);
            // Versions strictly increase, one per mutate line.
            let versions: Vec<u64> = served
                .iter()
                .filter_map(|line| Json::parse(line).unwrap().get("graph_version")?.as_u64())
                .collect();
            prop_assert_eq!(versions.len(), steps.len());
            for (i, &version) in versions.iter().enumerate() {
                prop_assert_eq!(version, i as u64 + 1);
            }
            prop_assert_eq!(engine.cache().graph_version(&dataset_spec(&spec)), steps.len() as u64);
        }
    }
}

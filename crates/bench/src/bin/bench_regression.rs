//! CI bench-regression gate: measures solve wall-time, estimator throughput
//! and held-out seed-set quality for the MC (live-edge worlds) and RIS
//! engines on a quick synthetic instance, writes a machine-readable
//! `BENCH_<sha>.json`, and — with `--check <baseline.json>` — exits non-zero
//! when any metric regresses more than 25% against the checked-in baseline.
//!
//! ```text
//! bench_regression [--out PATH] [--check BASELINE] [--sha SHA]
//! ```
//!
//! `--sha` defaults to `$GITHUB_SHA`, then "local". Quality metrics are
//! fully deterministic (fixed seeds); wall-times vary with the runner, which
//! is why the checked-in baseline carries generous headroom on top of the
//! 25% gate.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use tcim_bench::regression::{compare, BenchRecord, REGRESSION_TOLERANCE};
use tcim_core::{solve_tcim_budget, BudgetConfig, EstimatorConfig, RisConfig, WorldsConfig};
use tcim_datasets::SyntheticConfig;
use tcim_diffusion::{Deadline, InfluenceOracle, MonteCarloEstimator};
use tcim_graph::NodeId;

struct Cli {
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    sha: String,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        out: None,
        check: None,
        sha: std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => cli.out = args.next().map(PathBuf::from),
            "--check" => cli.check = args.next().map(PathBuf::from),
            "--sha" => {
                if let Some(sha) = args.next() {
                    cli.sha = sha;
                }
            }
            other => eprintln!("warning: ignoring unknown flag '{other}'"),
        }
    }
    cli
}

/// Times `op` and returns (milliseconds, result).
fn timed<R>(op: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = op();
    (start.elapsed().as_secs_f64() * 1e3, result)
}

fn main() {
    let cli = parse_cli();
    let mut record = BenchRecord::new(&cli.sha);

    // Quick instance: big enough that estimator costs dominate, small enough
    // for a CI smoke job.
    let graph =
        Arc::new(SyntheticConfig { num_nodes: 600, ..SyntheticConfig::default() }.build().unwrap());
    let deadline = Deadline::finite(5);
    let budget = 10;

    // --- MC (live-edge worlds) engine: build + greedy/CELF solve ----------
    let (mc_solve_ms, mc_report) = timed(|| {
        let oracle = EstimatorConfig::Worlds(WorldsConfig {
            num_worlds: 200,
            seed: 1,
            ..Default::default()
        })
        .build(Arc::clone(&graph), deadline)
        .expect("world oracle");
        solve_tcim_budget(&oracle, &BudgetConfig::new(budget)).expect("world solve")
    });
    record.push("mc_solve_ms", mc_solve_ms);

    // --- RIS engine: build + greedy/CELF solve ----------------------------
    let ris_config = RisConfig { num_sets: 20_000, seed: 2, ..Default::default() };
    let (ris_solve_ms, ris_report) = timed(|| {
        let oracle = EstimatorConfig::Ris(ris_config)
            .build(Arc::clone(&graph), deadline)
            .expect("ris oracle");
        solve_tcim_budget(&oracle, &BudgetConfig::new(budget)).expect("ris solve")
    });
    record.push("ris_solve_ms", ris_solve_ms);

    // --- Estimator throughput: evaluations per second ---------------------
    let eval_seeds: Vec<NodeId> = mc_report.seeds.clone();
    let world_oracle =
        EstimatorConfig::Worlds(WorldsConfig { num_worlds: 200, seed: 1, ..Default::default() })
            .build(Arc::clone(&graph), deadline)
            .expect("world oracle");
    let (mc_eval_ms, _) = timed(|| {
        for _ in 0..50 {
            world_oracle.evaluate(&eval_seeds).expect("world evaluate");
        }
    });
    record.push("mc_eval_per_s", 50.0 / (mc_eval_ms / 1e3));

    let ris_oracle =
        EstimatorConfig::Ris(ris_config).build(Arc::clone(&graph), deadline).expect("ris oracle");
    let (ris_eval_ms, _) = timed(|| {
        for _ in 0..50 {
            ris_oracle.evaluate(&eval_seeds).expect("ris evaluate");
        }
    });
    record.push("ris_eval_per_s", 50.0 / (ris_eval_ms / 1e3));

    // --- Seed-set quality under a common held-out estimator ---------------
    // Deterministic (fixed seeds), so the 25% gate also catches correctness
    // regressions that silently degrade selection quality.
    let held_out = MonteCarloEstimator::new(Arc::clone(&graph), deadline, 400, 99).unwrap();
    let mc_quality = held_out.evaluate(&mc_report.seeds).unwrap().total();
    let ris_quality = held_out.evaluate(&ris_report.seeds).unwrap().total();
    record.push("mc_quality", mc_quality);
    record.push("ris_quality", ris_quality);

    print!("{}", record.to_json());

    if let Some(out) = &cli.out {
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
        std::fs::write(out, record.to_json()).expect("write bench record");
        eprintln!("wrote {}", out.display());
    }

    if let Some(baseline_path) = &cli.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|err| panic!("cannot read {}: {err}", baseline_path.display()));
        let baseline = BenchRecord::parse_json(&text)
            .unwrap_or_else(|err| panic!("cannot parse {}: {err}", baseline_path.display()));
        let violations = compare(&record, &baseline, REGRESSION_TOLERANCE);
        if violations.is_empty() {
            eprintln!(
                "bench-regression: clean against baseline {} ({})",
                baseline_path.display(),
                baseline.sha
            );
        } else {
            eprintln!("bench-regression: {} violation(s):", violations.len());
            for violation in &violations {
                eprintln!("  {violation}");
            }
            std::process::exit(1);
        }
    }
}

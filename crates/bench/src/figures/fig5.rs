//! Figure 5 — synthetic dataset, budget problem, graph-property sweeps.
//!
//! * 5a: disparity vs activation probability `p_e`, for `τ ∈ {2, ∞}`.
//! * 5b: disparity vs group-size ratio (55:45 … 80:20).
//! * 5c: disparity vs inter/intra-group connectivity ratio (1:1 … 1:25).

use std::sync::Arc;

use tcim_core::ConcaveWrapper;
use tcim_datasets::synthetic::{ACTIVATION_SWEEP, CONNECTIVITY_SWEEP, GROUP_RATIO_SWEEP};
use tcim_datasets::SyntheticConfig;
use tcim_diffusion::Deadline;

use crate::{build_oracle, fmt3, run_budget_suite, Args, FigureOutput, Table};

/// Runs the Figure 5 experiments (panels selected via `--part`).
pub fn run(args: &Args) -> FigureOutput {
    let base = SyntheticConfig::default().with_seed(args.seed);
    let samples = args.sample_count(100, base.samples);
    let budget = args.budget.unwrap_or(base.budget);

    let mut outputs = FigureOutput::new();

    if args.runs_part("a") {
        let mut table = Table::new(
            "Fig. 5a — disparity vs activation probability p_e (synthetic, B = 30)",
            &["p_e", "P1 tau=2", "P4 tau=2", "P1 tau=inf", "P4 tau=inf"],
        );
        for &pe in &ACTIVATION_SWEEP {
            let graph = Arc::new(
                base.clone()
                    .with_edge_probability(pe)
                    .build()
                    .expect("synthetic graph generation failed"),
            );
            let mut row = vec![format!("{pe}")];
            for deadline in [Deadline::finite(2), Deadline::unbounded()] {
                let oracle = build_oracle(Arc::clone(&graph), deadline, samples, args.seed);
                let reports = run_budget_suite(&oracle, budget, None, &[ConcaveWrapper::Log]);
                row.push(fmt3(reports[0].disparity()));
                row.push(fmt3(reports[1].disparity()));
            }
            // Reorder so the columns match the header (P1/P4 per deadline).
            table.push_row(vec![
                row[0].clone(),
                row[1].clone(),
                row[2].clone(),
                row[3].clone(),
                row[4].clone(),
            ]);
        }
        outputs.push(("fig5a_activation_probability".to_string(), table));
    }

    if args.runs_part("b") {
        let mut table = Table::new(
            "Fig. 5b — disparity vs group-size ratio |V1|:|V2| (synthetic, B = 30, tau = 20)",
            &["ratio", "P1 disparity", "P4 disparity"],
        );
        for &(label, fraction) in &GROUP_RATIO_SWEEP {
            let config = base.clone().with_majority_fraction(fraction);
            let graph = Arc::new(config.build().expect("synthetic graph generation failed"));
            let oracle = build_oracle(
                Arc::clone(&graph),
                Deadline::finite(base.deadline),
                samples,
                args.seed,
            );
            let reports = run_budget_suite(&oracle, budget, None, &[ConcaveWrapper::Log]);
            table.push_row(vec![
                label.to_string(),
                fmt3(reports[0].disparity()),
                fmt3(reports[1].disparity()),
            ]);
        }
        outputs.push(("fig5b_group_sizes".to_string(), table));
    }

    if args.runs_part("c") {
        let mut table = Table::new(
            "Fig. 5c — disparity vs inter/intra connectivity ratio (synthetic, B = 30, tau = 20)",
            &["inter:intra", "P1 disparity", "P4 disparity"],
        );
        for &(label, p_across) in &CONNECTIVITY_SWEEP {
            let config = base.clone().with_p_across(p_across);
            let graph = Arc::new(config.build().expect("synthetic graph generation failed"));
            let oracle = build_oracle(
                Arc::clone(&graph),
                Deadline::finite(base.deadline),
                samples,
                args.seed,
            );
            let reports = run_budget_suite(&oracle, budget, None, &[ConcaveWrapper::Log]);
            table.push_row(vec![
                label.to_string(),
                fmt3(reports[0].disparity()),
                fmt3(reports[1].disparity()),
            ]);
        }
        outputs.push(("fig5c_connectivity".to_string(), table));
    }

    outputs
}

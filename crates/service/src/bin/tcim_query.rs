//! One-shot campaign query: build a single protocol request from CLI flags
//! and serve it — in-process by default, or against a running `tcim_serve`
//! socket server with `--connect` / `--connect-unix`.
//!
//! ```text
//! tcim_query --op solve_budget --dataset synthetic --deadline 5 --budget 10 --fair
//! tcim_query --op solve_cover --dataset synthetic --quota 0.3 --group 1
//! tcim_query --op audit --dataset illustrative --deadline 2 --seeds 0,1,2
//! tcim_query --op estimate --dataset synthetic --estimator ris --samples 20000 --seeds 4,17
//! tcim_query --connect 127.0.0.1:7341 --op ping
//! tcim_query --connect 127.0.0.1:7341 --op stats
//! tcim_query --connect 127.0.0.1:7341 --file requests.jsonl
//! ```
//!
//! Flags mirror the JSONL protocol fields one-to-one (see
//! `tcim_service::protocol`); `--show-request` additionally prints the
//! request line, which can be piped straight into `tcim_serve`. With
//! `--file`, raw request lines are replayed over the connection in lockstep
//! (send one, read one) and each response is printed as received — the
//! socket analog of `tcim_serve --input`. `--file` requires a connection
//! and conflicts with the request-building flags.

use std::process::ExitCode;

use tcim_diffusion::ParallelismConfig;
use tcim_service::{Client, Json, Request, ServiceEngine};

/// Where to send the request: the in-process engine or a running server.
enum Target {
    Local,
    Tcp(String),
    #[cfg(unix)]
    Unix(String),
}

struct Cli {
    request: Option<Request>,
    target: Target,
    file: Option<String>,
    parallelism: ParallelismConfig,
    show_request: bool,
}

/// Collects the flags as protocol JSON members, letting the protocol layer
/// do all validation so CLI and JSONL errors read identically.
fn parse_cli(args: &mut std::env::Args) -> Result<Cli, String> {
    let mut members: Vec<(String, Json)> = Vec::new();
    let mut target = Target::Local;
    let mut file: Option<String> = None;
    let mut parallelism = ParallelismConfig::auto();
    let mut show_request = false;

    fn next_value(args: &mut std::env::Args, flag: &str) -> Result<String, String> {
        args.next().ok_or_else(|| format!("missing value for {flag}"))
    }
    fn number(raw: &str, flag: &str) -> Result<Json, String> {
        raw.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid value '{raw}' for {flag} (expected a number)"))
    }
    fn id_list(raw: &str, flag: &str) -> Result<Json, String> {
        raw.split(',')
            .filter(|part| !part.is_empty())
            .map(|part| {
                part.trim()
                    .parse::<u64>()
                    .map(|n| Json::Num(n as f64))
                    .map_err(|_| format!("invalid node id '{part}' in {flag}"))
            })
            .collect::<Result<Vec<Json>, String>>()
            .map(Json::Arr)
    }

    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--op" | "--dataset" | "--model" | "--estimator" | "--wrapper" | "--algorithm" => {
                let value = next_value(args, &flag)?;
                members.push((flag[2..].to_string(), Json::Str(value)));
            }
            "--dataset-seed" | "--estimator-seed" | "--samples" | "--budget" | "--quota"
            | "--max-seeds" | "--tolerance" | "--disparity-cap" | "--group" | "--epsilon"
            | "--algorithm-seed" => {
                let value = next_value(args, &flag)?;
                members.push((flag[2..].replace('-', "_"), number(&value, &flag)?));
            }
            "--deadline" => {
                let value = next_value(args, &flag)?;
                let json = if value == "inf" { Json::from("inf") } else { number(&value, &flag)? };
                members.push(("deadline".into(), json));
            }
            "--seeds" | "--candidates" => {
                let value = next_value(args, &flag)?;
                members.push((flag[2..].to_string(), id_list(&value, &flag)?));
            }
            "--weights" => {
                let value = next_value(args, &flag)?;
                let weights = value
                    .split(',')
                    .map(|part| number(part.trim(), "--weights"))
                    .collect::<Result<Vec<Json>, String>>()?;
                members.push(("weights".into(), Json::Arr(weights)));
            }
            "--fair" => members.push(("fair".into(), Json::Bool(true))),
            "--connect" => {
                let addr = next_value(args, &flag)?;
                target = Target::Tcp(addr);
            }
            "--connect-unix" => {
                let path = next_value(args, &flag)?;
                #[cfg(unix)]
                {
                    target = Target::Unix(path);
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err("--connect-unix is only available on Unix platforms".to_string());
                }
            }
            "--file" => file = Some(next_value(args, &flag)?),
            "--threads" => {
                let raw = next_value(args, &flag)?;
                let threads: usize = raw.parse().map_err(|_| {
                    format!("invalid value '{raw}' for --threads (expected an integer; 0 = auto)")
                })?;
                parallelism = ParallelismConfig::fixed(threads);
            }
            "--show-request" => show_request = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let request = if let Some(path) = &file {
        if matches!(target, Target::Local) {
            return Err("--file requires a connection (--connect or --connect-unix); \
                        use `tcim_serve --input` for local batches"
                .to_string());
        }
        if let Some((key, _)) = members.first() {
            return Err(format!(
                "--file replays raw request lines from '{path}' and conflicts with \
                 request-building flags (got --{})",
                key.replace('_', "-")
            ));
        }
        None
    } else {
        Some(Request::from_json(&Json::Obj(members)).map_err(|err| err.to_string())?)
    };
    Ok(Cli { request, target, file, parallelism, show_request })
}

fn connect(target: &Target) -> Result<Client, String> {
    match target {
        Target::Tcp(addr) => Client::connect_tcp(addr.as_str())
            .map_err(|err| format!("cannot connect to '{addr}': {err}")),
        #[cfg(unix)]
        Target::Unix(path) => Client::connect_unix(path)
            .map_err(|err| format!("cannot connect to unix socket '{path}': {err}")),
        Target::Local => unreachable!("local target never connects"),
    }
}

/// Replays raw request lines over the connection in lockstep, printing each
/// response; returns whether every response had `"ok": true`.
fn replay_file(client: &mut Client, path: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read request file '{path}': {err}"))?;
    let mut all_ok = true;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        client.send_line(line).map_err(|err| format!("cannot send request: {err}"))?;
        let response = client
            .recv()
            .map_err(|err| format!("cannot read response: {err}"))?
            .ok_or_else(|| "connection closed before the response".to_string())?;
        if response.get("ok").and_then(|ok| ok.as_bool()) != Some(true) {
            all_ok = false;
        }
        println!("{response}");
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    args.next(); // program name
    let cli = match parse_cli(&mut args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if let (true, Some(request)) = (cli.show_request, &cli.request) {
        eprintln!("{}", request.to_json());
    }

    let outcome: Result<bool, String> = match (&cli.target, &cli.file) {
        (Target::Local, _) => {
            let request = cli.request.as_ref().expect("local mode always builds a request");
            let engine = ServiceEngine::new(cli.parallelism);
            let response = engine.serve(request);
            println!("{response}");
            Ok(response.get("ok").and_then(|ok| ok.as_bool()) == Some(true))
        }
        (_, Some(path)) => connect(&cli.target).and_then(|mut client| {
            let path = path.clone();
            replay_file(&mut client, &path)
        }),
        (_, None) => connect(&cli.target).and_then(|mut client| {
            let request = cli.request.as_ref().expect("socket one-shot builds a request");
            let response = client
                .call(request)
                .map_err(|err| format!("request over the socket failed: {err}"))?;
            println!("{response}");
            Ok(response.get("ok").and_then(|ok| ok.as_bool()) == Some(true))
        }),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

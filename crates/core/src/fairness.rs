//! The group-fairness (disparity) measure of Section 4.3.
//!
//! Unfairness of a seed set is the maximum pairwise gap between *normalized*
//! group utilities (Eq. 2):
//!
//! ```text
//! disparity(S) = max_{i,j} | f_τ(S; V_i)/|V_i| − f_τ(S; V_j)/|V_j| |
//! ```
//!
//! Normalizing by group size makes the measure capture "average utility per
//! node in a group" and hence agnostic to group sizes.

use tcim_diffusion::{GroupInfluence, InfluenceOracle};
use tcim_graph::{GroupId, NodeId};

use crate::error::{CoreError, Result};

/// Maximum pairwise disparity in normalized group utilities (Eq. 2).
///
/// Groups with zero members are ignored (they carry no utility and would
/// otherwise force the disparity to the maximum trivially).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when `influence` and `group_sizes`
/// disagree on the number of groups (a silent `zip` would truncate to the
/// shorter side and report a too-small disparity), or when a non-empty
/// group's utility is NaN (a NaN disparity would pass every `<= cap` check
/// as false and report an unfair solution as fair).
pub fn disparity(influence: &GroupInfluence, group_sizes: &[usize]) -> Result<f64> {
    if influence.values().len() != group_sizes.len() {
        return Err(CoreError::InvalidConfig {
            message: format!(
                "influence vector has {} groups but {} group sizes were supplied",
                influence.values().len(),
                group_sizes.len()
            ),
        });
    }
    let normalized: Vec<f64> = influence
        .values()
        .iter()
        .zip(group_sizes)
        .filter(|(_, &size)| size > 0)
        .map(|(&f, &size)| f / size as f64)
        .collect();
    max_pairwise_gap(&normalized)
}

/// Maximum pairwise absolute difference of a slice (0 for fewer than two
/// entries).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when any entry is NaN: NaN compares
/// false against every cap, so propagating it would let an unmeasurable
/// utility masquerade as a feasible (zero-ish) disparity.
pub fn max_pairwise_gap(values: &[f64]) -> Result<f64> {
    if let Some(position) = values.iter().position(|v| v.is_nan()) {
        return Err(CoreError::InvalidConfig {
            message: format!("group utility at index {position} is NaN"),
        });
    }
    if values.len() < 2 {
        return Ok(0.0);
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    Ok(max - min)
}

/// Audits a seed set under any influence oracle: evaluates the per-group
/// influence and assembles the full [`FairnessReport`] (disparity, maximin
/// worst-off group, normalized utilities).
///
/// The oracle is taken as a trait object, so the audit paths accept every
/// estimator — live-edge worlds, fresh Monte-Carlo, or RIS sketches (e.g.
/// built via [`crate::EstimatorConfig`]) — interchangeably.
///
/// # Errors
///
/// Returns an error if a seed is out of bounds for the oracle's graph.
pub fn audit_seed_set(oracle: &dyn InfluenceOracle, seeds: &[NodeId]) -> Result<FairnessReport> {
    let influence = oracle.evaluate(seeds)?;
    FairnessReport::new(&influence, &oracle.graph().group_sizes())
}

/// A per-group fairness summary for one solution, convenient for experiment
/// tables and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Normalized utility `f_τ(S; V_i) / |V_i|` per group.
    pub normalized_utilities: Vec<f64>,
    /// Raw expected influenced counts per group.
    pub raw_utilities: Vec<f64>,
    /// Group sizes.
    pub group_sizes: Vec<usize>,
    /// The Eq. 2 disparity.
    pub disparity: f64,
    /// Total expected influenced nodes.
    pub total: f64,
    /// Fraction of the whole population influenced.
    pub total_fraction: f64,
}

impl FairnessReport {
    /// Builds a report from an influence vector and group sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] under the same conditions as
    /// [`disparity`]: mismatched group counts or a NaN utility in a
    /// non-empty group.
    pub fn new(influence: &GroupInfluence, group_sizes: &[usize]) -> Result<Self> {
        let disparity = disparity(influence, group_sizes)?;
        let raw_utilities = influence.values().to_vec();
        let normalized_utilities = influence.normalized(group_sizes);
        let total = influence.total();
        let population: usize = group_sizes.iter().sum();
        Ok(FairnessReport {
            disparity,
            normalized_utilities,
            raw_utilities,
            group_sizes: group_sizes.to_vec(),
            total,
            total_fraction: if population == 0 { 0.0 } else { total / population as f64 },
        })
    }

    /// Normalized utility of one group (0 for unknown groups).
    pub fn group_fraction(&self, group: GroupId) -> f64 {
        self.normalized_utilities.get(group.index()).copied().unwrap_or(0.0)
    }

    /// Index of the group with the lowest normalized utility among non-empty
    /// groups (`None` if there are no non-empty groups).
    pub fn worst_off_group(&self) -> Option<GroupId> {
        self.normalized_utilities
            .iter()
            .enumerate()
            .filter(|(i, _)| self.group_sizes[*i] > 0)
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| GroupId::from_index(i))
    }

    /// The pair of non-empty groups realizing the maximum disparity.
    pub fn most_disparate_pair(&self) -> Option<(GroupId, GroupId)> {
        let candidates: Vec<(usize, f64)> = self
            .normalized_utilities
            .iter()
            .enumerate()
            .filter(|(i, _)| self.group_sizes[*i] > 0)
            .map(|(i, &v)| (i, v))
            .collect();
        if candidates.len() < 2 {
            return None;
        }
        let best = candidates
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?;
        let worst = candidates
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?;
        Some((GroupId::from_index(best.0), GroupId::from_index(worst.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disparity_is_the_max_normalized_gap() {
        let influence = GroupInfluence::from_values(vec![30.0, 2.0]);
        // Normalized: 30/100 = 0.3 vs 2/50 = 0.04 -> disparity 0.26.
        let d = disparity(&influence, &[100, 50]).unwrap();
        assert!((d - 0.26).abs() < 1e-12);
    }

    #[test]
    fn disparity_is_zero_for_single_or_empty_groups() {
        let influence = GroupInfluence::from_values(vec![10.0]);
        assert_eq!(disparity(&influence, &[100]).unwrap(), 0.0);
        let influence = GroupInfluence::from_values(vec![10.0, 0.0]);
        assert_eq!(disparity(&influence, &[100, 0]).unwrap(), 0.0);
        assert_eq!(max_pairwise_gap(&[]).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_group_counts_are_rejected() {
        // Regression: `zip` used to truncate to the shorter side, so a
        // 3-group influence vector audited against 2 sizes reported the
        // 2-group disparity instead of erroring.
        let influence = GroupInfluence::from_values(vec![30.0, 2.0, 50.0]);
        let err = disparity(&influence, &[100, 50]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }), "got {err}");
        assert!(err.to_string().contains("3 groups"), "got {err}");
        assert!(FairnessReport::new(&influence, &[100, 50]).is_err());
        let err = disparity(&influence, &[100, 50, 10, 10]).unwrap_err();
        assert!(err.to_string().contains("4 group sizes"), "got {err}");
    }

    #[test]
    fn nan_utilities_are_rejected() {
        // Regression: a NaN utility used to propagate into a NaN disparity,
        // which compares false against every cap and so looked "feasible".
        assert!(max_pairwise_gap(&[0.1, f64::NAN]).is_err());
        let influence = GroupInfluence::from_values(vec![30.0, f64::NAN]);
        assert!(disparity(&influence, &[100, 50]).is_err());
        assert!(FairnessReport::new(&influence, &[100, 50]).is_err());
        // ... but a NaN confined to an *empty* group is ignorable: the group
        // carries no utility and is excluded from the measure.
        assert_eq!(disparity(&influence, &[100, 0]).unwrap(), 0.0);
    }

    #[test]
    fn disparity_is_group_size_agnostic() {
        // Same per-capita utility in very different group sizes -> 0 disparity.
        let influence = GroupInfluence::from_values(vec![50.0, 5.0]);
        assert!(disparity(&influence, &[500, 50]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn report_summarizes_everything() {
        let influence = GroupInfluence::from_values(vec![30.0, 2.0, 0.0]);
        let report = FairnessReport::new(&influence, &[100, 50, 0]).unwrap();
        assert_eq!(report.raw_utilities, vec![30.0, 2.0, 0.0]);
        assert!((report.group_fraction(GroupId(0)) - 0.3).abs() < 1e-12);
        assert!((report.total - 32.0).abs() < 1e-12);
        assert!((report.total_fraction - 32.0 / 150.0).abs() < 1e-12);
        assert_eq!(report.worst_off_group(), Some(GroupId(1)));
        assert_eq!(report.most_disparate_pair(), Some((GroupId(0), GroupId(1))));
        assert!((report.disparity - 0.26).abs() < 1e-12);
        assert_eq!(report.group_fraction(GroupId(9)), 0.0);
    }

    #[test]
    fn report_handles_empty_population() {
        let influence = GroupInfluence::from_values(vec![]);
        let report = FairnessReport::new(&influence, &[]).unwrap();
        assert_eq!(report.total_fraction, 0.0);
        assert_eq!(report.worst_off_group(), None);
        assert_eq!(report.most_disparate_pair(), None);
    }
}

// Fixture: unsafe-safety must fire on undocumented unsafe.

pub fn read_first(ptr: *const u8) -> u8 {
    // A plain code comment is not a SAFETY justification.
    unsafe { *ptr }
}

// Fixture: wall-clock stays quiet on annotated sites and test code.
use std::time::Instant;

pub fn timed<R>(op: impl FnOnce() -> R) -> (R, f64) {
    // lint:allow(wall-clock): measures the op for a local log line, never reaches output
    let start = Instant::now();
    let out = op();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_themselves() {
        let start = Instant::now();
        assert!(start.elapsed().as_secs() < 60);
    }
}

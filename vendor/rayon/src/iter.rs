//! Indexed parallel iterators.
//!
//! Everything here models a *random-access* source: a length plus an
//! `item(index)` producer. Consumers split `0..len` into one contiguous chunk
//! per thread, run the chunks under `std::thread::scope`, and recombine chunk
//! results in chunk order — which is what makes `collect` order-preserving
//! and integer reductions independent of the thread count.

use crate::current_num_threads;

/// A data-parallel iterator over a random-access source.
pub trait ParallelIterator: Sized + Sync {
    /// Item type produced for each index.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produces the item at `index` (called concurrently from worker threads).
    fn par_item(&self, index: usize) -> Self::Item;

    /// Maps every item through `f`.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Chunk-local fold: every worker folds its chunk of items into an
    /// accumulator created by `identity`. Combine the per-chunk accumulators
    /// with [`Fold::reduce`].
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
    {
        Fold { base: self, identity, fold_op }
    }

    /// Reduces all items with `op`, starting each chunk from `identity()` and
    /// combining chunk results left-to-right in chunk order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let chunks = run_chunked(&self, |iter, start, end| {
            let mut acc = identity();
            for i in start..end {
                acc = op(acc, iter.par_item(i));
            }
            acc
        });
        chunks.into_iter().fold(identity(), &op)
    }

    /// Runs `f` on every item.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        run_chunked(&self, |iter, start, end| {
            for i in start..end {
                f(iter.par_item(i));
            }
        });
    }

    /// Collects all items, preserving index order at any thread count.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Splits `0..len` into per-thread ranges and runs `work` on each, returning
/// the chunk results in chunk order.
fn run_chunked<P, T, W>(iter: &P, work: W) -> Vec<T>
where
    P: ParallelIterator,
    T: Send,
    W: Fn(&P, usize, usize) -> T + Sync,
{
    let len = iter.par_len();
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().clamp(1, len);
    if threads == 1 {
        return vec![work(iter, 0, len)];
    }
    let chunk = len.div_ceil(threads);
    // When `chunk` rounds up, fewer than `threads` workers are needed;
    // spawning the full count would hand trailing workers a `start` past the
    // end of the input (e.g. len 10, threads 8 → chunk 2 → worker 6 would
    // start at 12).
    let workers = len.div_ceil(chunk);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(len);
                let work = &work;
                scope.spawn(move || work(iter, start, end))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Types constructible from a parallel iterator (`collect` targets).
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from `iter`.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        let chunks = run_chunked(&iter, |it, start, end| {
            let mut out = Vec::with_capacity(end - start);
            for i in start..end {
                out.push(it.par_item(i));
            }
            out
        });
        let mut result = Vec::with_capacity(iter.par_len());
        for chunk in chunks {
            result.extend(chunk);
        }
        result
    }
}

/// Map adapter; see [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Sync,
{
    type Item = U;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_item(&self, index: usize) -> U {
        (self.f)(self.base.par_item(index))
    }
}

/// Pending chunk-local fold; see [`ParallelIterator::fold`].
pub struct Fold<B, ID, F> {
    base: B,
    identity: ID,
    fold_op: F,
}

impl<B, A, ID, F> Fold<B, ID, F>
where
    B: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, B::Item) -> A + Sync,
{
    /// Folds every chunk, then combines the per-chunk accumulators
    /// left-to-right in chunk order with `op`, starting from `identity()`.
    pub fn reduce<ID2, OP>(self, identity: ID2, op: OP) -> A
    where
        ID2: Fn() -> A + Sync,
        OP: Fn(A, A) -> A + Sync,
    {
        let chunks = run_chunked(&self.base, |iter, start, end| {
            let mut acc = (self.identity)();
            for i in start..end {
                acc = (self.fold_op)(acc, iter.par_item(i));
            }
            acc
        });
        chunks.into_iter().fold(identity(), &op)
    }
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on references, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (a reference).
    type Item: Send + 'data;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Iter = RangeParIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeParIter { start: self.start, len }
            }
        }

        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn par_len(&self) -> usize {
                self.len
            }

            fn par_item(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

/// Parallel iterator over slice elements.
pub struct SliceParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data [T] {
    type Iter = SliceParIter<'data, T>;
    type Item = &'data T;

    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data Vec<T> {
    type Iter = SliceParIter<'data, T>;
    type Item = &'data T;

    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self.as_slice() }
    }
}

impl<'data, T: Sync + 'data> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_item(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

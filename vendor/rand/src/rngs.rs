//! Concrete generators. Only [`StdRng`] is provided; it is deterministic and
//! portable (unlike upstream `rand`, which reserves the right to change the
//! algorithm behind `StdRng`, this vendored version pins xoshiro256++ forever
//! because the repository's tests depend on exact streams).

use crate::{RngCore, SeedableRng};

/// A deterministic xoshiro256++ generator.
///
/// Passes BigCrush, is fast (one rotate, one add, four xors per word), and has
/// a 2^256 − 1 period — more than enough statistical quality for Monte-Carlo
/// influence estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; remap it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped_and_produces_output() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn seed_from_u64_zero_is_fine() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}

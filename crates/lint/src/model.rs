//! Structural view of one source file: function spans, `#[cfg(test)]`
//! ranges and suppression comments, recovered from the raw token stream.
//!
//! The recovery is deliberately syntactic — brace matching and attribute
//! pattern matching over [`crate::lexer`] tokens, no parse tree — which is
//! exactly enough for scope questions the rules ask: "is this token inside
//! test code?", "is this token inside a function named `fingerprint`?",
//! "does this line carry a suppression for rule X?".

use std::collections::BTreeMap;

use crate::lexer::{tokenize, Token, TokenKind};

/// A half-open token-index range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index of the range.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Span {
    /// Whether token index `i` falls inside this span.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }
}

/// One `fn` item: its name and the token span of its body (braces
/// included).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token span of the body block, `{` and `}` included.
    pub body: Span,
}

/// A parsed `// lint:allow(rule): reason` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory justification after the colon.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// A malformed suppression comment (missing reason, bad syntax); reported
/// as a finding by the analyzer so suppressions cannot silently rot.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// What is wrong with it.
    pub message: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// Everything the rules need to know about one file.
pub struct FileModel {
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// Body spans of test code: `#[cfg(test)]` items and `#[test]` fns.
    pub test_spans: Vec<Span>,
    /// Every `fn` item with a body, in source order (nested fns included).
    pub fn_spans: Vec<FnSpan>,
    /// Well-formed suppressions, keyed by line.
    pub suppressions: BTreeMap<u32, Vec<Suppression>>,
    /// Malformed suppression comments.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Whether the whole file is test scope (integration-test directory).
    pub whole_file_is_test: bool,
}

impl FileModel {
    /// Lexes and structures `source`. `whole_file_is_test` marks files
    /// under a `tests/` directory, where every token is test scope.
    pub fn parse(source: &str, whole_file_is_test: bool) -> FileModel {
        let tokens = tokenize(source);
        let test_spans = find_test_spans(&tokens);
        let fn_spans = find_fn_spans(&tokens);
        let (suppressions, bad_suppressions) = find_suppressions(&tokens);
        FileModel {
            tokens,
            test_spans,
            fn_spans,
            suppressions,
            bad_suppressions,
            whole_file_is_test,
        }
    }

    /// Whether token index `i` is inside test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.whole_file_is_test || self.test_spans.iter().any(|s| s.contains(i))
    }

    /// Whether token index `i` is inside the body of a function named
    /// `name`.
    pub fn in_fn_named(&self, i: usize, name: &str) -> bool {
        self.fn_spans.iter().any(|f| f.name == name && f.body.contains(i))
    }

    /// Whether a violation of `rule` on `line` is suppressed: an allow
    /// comment for the rule on the same line or on the line directly above.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressing_line(rule, line).is_some()
    }

    /// Like [`FileModel::is_suppressed`], but returns the comment line of
    /// the matching suppression — the hook the unused-suppression analysis
    /// uses to mark annotations as earning their keep.
    pub fn suppressing_line(&self, rule: &str, line: u32) -> Option<u32> {
        [line, line.saturating_sub(1)].iter().find_map(|l| {
            self.suppressions
                .get(l)
                .is_some_and(|list| list.iter().any(|s| s.rule == rule))
                .then_some(*l)
        })
    }
}

/// Finds `#[cfg(test)] <item> { … }` and `#[test] fn … { … }` body spans.
fn find_test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = match_attr(tokens, i, &["cfg", "(", "test"])
            .or_else(|| match_attr(tokens, i, &["test"]))
        {
            // Skip further attributes and comments between the attribute
            // and the item it decorates (`#[cfg(test)] #[allow(…)] // note`).
            let mut j = attr_end;
            loop {
                while j < tokens.len() && tokens[j].is_comment() {
                    j += 1;
                }
                match match_attr_any(tokens, j) {
                    Some(next) => j = next,
                    None => break,
                }
            }
            // The decorated item's body is the next top-level brace block
            // (ends at `;` instead for `mod name;` / use declarations).
            if let Some(span) = next_brace_block(tokens, j) {
                spans.push(span);
                i = span.end;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// If tokens at `i` start an attribute `#[…]` whose leading identifiers
/// match `lead` (e.g. `["cfg", "(", "test"]`), returns the index one past
/// the closing `]`.
fn match_attr(tokens: &[Token], i: usize, lead: &[&str]) -> Option<usize> {
    let end = match_attr_any(tokens, i)?;
    // Match `lead` against the tokens just past `#[`.
    for (j, want) in (i + 2..).zip(lead.iter()) {
        let tok = tokens.get(j)?;
        let matches = match *want {
            "(" => tok.is_punct('('),
            name => tok.is_ident(name),
        };
        if !matches {
            return None;
        }
    }
    Some(end)
}

/// If tokens at `i` start any attribute `#[…]`, returns the index one past
/// the closing `]`.
fn match_attr_any(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(i + 1) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
    }
    None
}

/// Returns the span of the next `{ … }` block starting at or after `i`,
/// stopping early at a `;` (item without a body).
pub(crate) fn next_brace_block(tokens: &[Token], i: usize) -> Option<Span> {
    let mut j = i;
    while j < tokens.len() {
        let tok = &tokens[j];
        if tok.is_punct(';') {
            return None;
        }
        if tok.is_punct('{') {
            let end = matching_brace(tokens, j)?;
            return Some(Span { start: j, end: end + 1 });
        }
        j += 1;
    }
    None
}

/// Given the index of a `{`, returns the index of its matching `}`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds every `fn name … { body }` item (methods, free functions, nested
/// fns; trait declarations without a body are skipped).
fn find_fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        // `fn` inside a bound like `Fn(…)` lexes as `Fn`, never `fn`; a
        // preceding `.` would mean a method call named `fn`, impossible.
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        if let Some(body) = next_brace_block(tokens, i + 2) {
            spans.push(FnSpan { name: name_tok.text.clone(), body });
        }
    }
    spans
}

/// The suppression grammar: `// lint:allow(<rule>): <reason>`.
///
/// Both pieces are mandatory: the rule name (validated against the registry
/// by the analyzer) and a non-empty reason after the colon. Anything that
/// starts with `lint:allow` but does not parse is collected as a
/// [`BadSuppression`] so typos fail the build instead of silently
/// suppressing nothing.
fn find_suppressions(tokens: &[Token]) -> (BTreeMap<u32, Vec<Suppression>>, Vec<BadSuppression>) {
    let mut good: BTreeMap<u32, Vec<Suppression>> = BTreeMap::new();
    let mut bad = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                good.entry(tok.line).or_default().push(Suppression {
                    rule,
                    reason,
                    line: tok.line,
                });
            }
            Err(message) => bad.push(BadSuppression { message, line: tok.line }),
        }
    }
    (good, bad)
}

/// Parses the `(<rule>): <reason>` tail of an allow comment.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("malformed suppression: expected `lint:allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed suppression: missing `)` after the rule name".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return Err("malformed suppression: empty rule name".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix(':') else {
        return Err(format!(
            "suppression for '{rule}' is missing its `: <reason>` — every allow must say why"
        ));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(format!(
            "suppression for '{rule}' has an empty reason — every allow must say why"
        ));
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_spans_cover_their_bodies() {
        let src = "fn lib() {}\n#[cfg(test)]\n#[allow(deprecated)] // note\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let model = FileModel::parse(src, false);
        assert_eq!(model.test_spans.len(), 1);
        let unwrap_idx =
            model.tokens.iter().position(|t| t.is_ident("unwrap")).expect("unwrap token");
        assert!(model.in_test(unwrap_idx));
        let after = model.tokens.iter().position(|t| t.is_ident("after")).expect("after");
        assert!(!model.in_test(after));
    }

    #[test]
    fn test_attribute_fns_are_test_scope() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn lib() { b.unwrap(); }";
        let model = FileModel::parse(src, false);
        let first = model.tokens.iter().position(|t| t.is_ident("a")).expect("a");
        let second = model.tokens.iter().position(|t| t.is_ident("b")).expect("b");
        assert!(model.in_test(first));
        assert!(!model.in_test(second));
    }

    #[test]
    fn fn_spans_carry_names_and_bodies() {
        let src = "impl X { fn fingerprint(&self) -> String { self.inner() } }\nfn other() {}";
        let model = FileModel::parse(src, false);
        let names: Vec<&str> = model.fn_spans.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["fingerprint", "other"]);
        let inner = model.tokens.iter().position(|t| t.is_ident("inner")).expect("inner");
        assert!(model.in_fn_named(inner, "fingerprint"));
        assert!(!model.in_fn_named(inner, "other"));
    }

    #[test]
    fn trait_methods_without_bodies_are_skipped() {
        let model = FileModel::parse("trait T { fn no_body(&self); fn with(&self) {} }", false);
        let names: Vec<&str> = model.fn_spans.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with"]);
    }

    #[test]
    fn suppressions_parse_and_reject() {
        let src = "\n// lint:allow(panic): invariant holds by construction\nx.unwrap();\n// lint:allow(panic)\n// lint:allow(panic):\n// lint:allow(): no rule\n";
        let model = FileModel::parse(src, false);
        assert!(model.is_suppressed("panic", 2), "same line");
        assert!(model.is_suppressed("panic", 3), "line above");
        assert!(!model.is_suppressed("panic", 5));
        assert!(!model.is_suppressed("stdout-purity", 3));
        assert_eq!(model.bad_suppressions.len(), 3);
        assert!(model.bad_suppressions[0].message.contains("missing its `: <reason>`"));
        assert!(model.bad_suppressions[1].message.contains("empty reason"));
        assert!(model.bad_suppressions[2].message.contains("empty rule name"));
    }

    #[test]
    fn whole_file_test_scope() {
        let model = FileModel::parse("fn x() { a.unwrap(); }", true);
        assert!(model.in_test(0));
    }
}

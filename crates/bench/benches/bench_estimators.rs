//! Micro-benchmarks of the three influence estimators evaluating the same
//! seed set on the synthetic SBM.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use tcim_datasets::SyntheticConfig;
use tcim_diffusion::{
    Deadline, InfluenceOracle, MonteCarloEstimator, ParallelismConfig, RisConfig, RisEstimator,
    WorldEstimator, WorldsConfig,
};
use tcim_graph::NodeId;

/// Serial vs parallel Monte-Carlo estimation on a workload big enough for
/// threading to pay off. Results are bitwise identical across the variants
/// (see `crates/diffusion/tests/determinism.rs`); only throughput differs.
fn bench_parallel_estimation(c: &mut Criterion) {
    let graph = Arc::new(
        SyntheticConfig { num_nodes: 1000, ..SyntheticConfig::default() }.build().unwrap(),
    );
    let deadline = Deadline::finite(20);
    let seeds: Vec<NodeId> = (0..30u32).map(NodeId).collect();
    let worlds = WorldsConfig { num_worlds: 400, seed: 1, ..Default::default() };

    let serial = WorldEstimator::new(Arc::clone(&graph), deadline, &worlds)
        .unwrap()
        .with_parallelism(ParallelismConfig::serial());
    let parallel = serial.with_parallelism(ParallelismConfig::auto());
    let mc_serial = MonteCarloEstimator::new(Arc::clone(&graph), deadline, 400, 2)
        .unwrap()
        .with_parallelism(ParallelismConfig::serial());
    let mc_parallel = mc_serial.with_parallelism(ParallelismConfig::auto());

    let mut group = c.benchmark_group("parallel_estimation");
    group.sample_size(10);
    group.bench_function("world_eval_400_serial", |b| {
        b.iter(|| black_box(serial.evaluate(&seeds).unwrap()))
    });
    group.bench_function("world_eval_400_auto", |b| {
        b.iter(|| black_box(parallel.evaluate(&seeds).unwrap()))
    });
    group.bench_function("monte_carlo_400_serial", |b| {
        b.iter(|| black_box(mc_serial.evaluate(&seeds).unwrap()))
    });
    group.bench_function("monte_carlo_400_auto", |b| {
        b.iter(|| black_box(mc_parallel.evaluate(&seeds).unwrap()))
    });
    group.bench_function("world_sample_400_serial", |b| {
        let config = WorldsConfig { parallelism: ParallelismConfig::serial(), ..worlds };
        b.iter(|| black_box(tcim_diffusion::WorldCollection::sample(&graph, &config).unwrap()))
    });
    group.bench_function("world_sample_400_auto", |b| {
        let config = WorldsConfig { parallelism: ParallelismConfig::auto(), ..worlds };
        b.iter(|| black_box(tcim_diffusion::WorldCollection::sample(&graph, &config).unwrap()))
    });
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let graph = Arc::new(SyntheticConfig::default().build().unwrap());
    let deadline = Deadline::finite(20);
    let seeds: Vec<NodeId> = (0..30u32).map(NodeId).collect();

    let world = WorldEstimator::new(
        Arc::clone(&graph),
        deadline,
        &WorldsConfig { num_worlds: 100, seed: 1, ..Default::default() },
    )
    .unwrap();
    let mc = MonteCarloEstimator::new(Arc::clone(&graph), deadline, 100, 2).unwrap();
    let ris = RisEstimator::new(
        Arc::clone(&graph),
        deadline,
        &RisConfig { num_sets: 10_000, seed: 3, ..Default::default() },
    )
    .unwrap();

    let mut group = c.benchmark_group("estimator_evaluate");
    group.sample_size(20);
    group.bench_function("world_100", |b| b.iter(|| black_box(world.evaluate(&seeds).unwrap())));
    group.bench_function("monte_carlo_100", |b| b.iter(|| black_box(mc.evaluate(&seeds).unwrap())));
    group.bench_function("ris_10000", |b| b.iter(|| black_box(ris.evaluate(&seeds).unwrap())));
    group.finish();

    let mut build = c.benchmark_group("estimator_build");
    build.sample_size(10);
    build.bench_function("world_sample_100", |b| {
        b.iter(|| {
            black_box(
                WorldEstimator::new(
                    Arc::clone(&graph),
                    deadline,
                    &WorldsConfig { num_worlds: 100, seed: 7, ..Default::default() },
                )
                .unwrap(),
            )
        })
    });
    build.bench_function("ris_build_10000", |b| {
        b.iter(|| {
            black_box(
                RisEstimator::new(
                    Arc::clone(&graph),
                    deadline,
                    &RisConfig { num_sets: 10_000, seed: 9, ..Default::default() },
                )
                .unwrap(),
            )
        })
    });
    build.finish();
}

criterion_group!(benches, bench_estimators, bench_parallel_estimation);
criterion_main!(benches);

//! Error type for the TCIM problem layer.

use std::fmt;

/// Errors produced by the fair-TCIM solvers.
#[derive(Debug)]
pub enum CoreError {
    /// The solver configuration is invalid (zero budget, quota outside
    /// `[0, 1]`, empty candidate set, …).
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// An error from the diffusion / estimation layer.
    Diffusion(tcim_diffusion::DiffusionError),
    /// An error from the submodular-optimization layer.
    Submodular(tcim_submodular::SubmodularError),
    /// An error from the graph substrate.
    Graph(tcim_graph::GraphError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            CoreError::Diffusion(err) => write!(f, "diffusion error: {err}"),
            CoreError::Submodular(err) => write!(f, "submodular optimization error: {err}"),
            CoreError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Diffusion(err) => Some(err),
            CoreError::Submodular(err) => Some(err),
            CoreError::Graph(err) => Some(err),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<tcim_diffusion::DiffusionError> for CoreError {
    fn from(err: tcim_diffusion::DiffusionError) -> Self {
        CoreError::Diffusion(err)
    }
}

impl From<tcim_submodular::SubmodularError> for CoreError {
    fn from(err: tcim_submodular::SubmodularError) -> Self {
        CoreError::Submodular(err)
    }
}

impl From<tcim_graph::GraphError> for CoreError {
    fn from(err: tcim_graph::GraphError) -> Self {
        CoreError::Graph(err)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: CoreError = tcim_submodular::SubmodularError::ZeroBudget.into();
        assert!(matches!(err, CoreError::Submodular(_)));
        assert!(err.to_string().contains("submodular"));
        assert!(std::error::Error::source(&err).is_some());

        let err: CoreError = tcim_diffusion::DiffusionError::NoSamples.into();
        assert!(err.to_string().contains("diffusion"));

        let err: CoreError = tcim_graph::GraphError::InvalidProbability { value: 3.0 }.into();
        assert!(err.to_string().contains("graph"));

        let err = CoreError::InvalidConfig { message: "quota out of range".into() };
        assert!(err.to_string().contains("quota out of range"));
        assert!(std::error::Error::source(&err).is_none());
    }
}

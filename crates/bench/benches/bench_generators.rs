//! Micro-benchmarks of the graph generators and the clustering pipeline.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcim_datasets::instagram::{instagram_surrogate, InstagramConfig};
use tcim_datasets::rice::rice_facebook_surrogate;
use tcim_graph::clustering::{spectral_clustering, SpectralConfig};
use tcim_graph::generators::{
    barabasi_albert, stochastic_block_model, BarabasiAlbertConfig, SbmConfig,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    for &n in &[500usize, 1000] {
        group.bench_with_input(BenchmarkId::new("sbm_bernoulli", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    stochastic_block_model(&SbmConfig::two_group(n, 0.7, 0.025, 0.001, 0.05, 1))
                        .unwrap(),
                )
            })
        });
    }
    group.bench_function("barabasi_albert_500", |b| {
        b.iter(|| {
            black_box(
                barabasi_albert(&BarabasiAlbertConfig {
                    num_nodes: 500,
                    edges_per_node: 3,
                    minority_fraction: 0.3,
                    homophily_bias: 2.0,
                    edge_probability: 0.05,
                    seed: 1,
                })
                .unwrap(),
            )
        })
    });
    group.bench_function("rice_surrogate", |b| {
        b.iter(|| black_box(rice_facebook_surrogate(1).unwrap()))
    });
    group.bench_function("instagram_surrogate_2pct", |b| {
        b.iter(|| {
            black_box(instagram_surrogate(&InstagramConfig { scale: 0.02, seed: 1 }).unwrap())
        })
    });
    group.finish();

    let mut clustering = c.benchmark_group("clustering");
    clustering.sample_size(10);
    let graph =
        stochastic_block_model(&SbmConfig::two_group(400, 0.6, 0.05, 0.005, 0.1, 2)).unwrap();
    clustering.bench_function("spectral_k2_400", |b| {
        b.iter(|| {
            black_box(
                spectral_clustering(&graph, &SpectralConfig { k: 2, ..Default::default() })
                    .unwrap(),
            )
        })
    });
    clustering.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);

//! Budget-constrained seed selection: TCIM-BUDGET (P1) and FAIRTCIM-BUDGET
//! (P4).
//!
//! Both problems pick at most `B` seeds; they differ only in the scalar
//! objective the greedy maximizes:
//!
//! * **P1** maximizes total influence `f_τ(S; V)` — the classical objective,
//!   which Section 4 shows can starve minority groups, increasingly so for
//!   tight deadlines.
//! * **P4** maximizes `Σ_i λ_i · H(f_τ(S; V_i))` for a concave `H`, which
//!   rewards influence on under-served groups and provably costs only a
//!   bounded amount of total influence (Theorem 1).
//!
//! The canonical way to run either is a [`ProblemSpec`] through
//! [`crate::solve`]; the free functions in this module are deprecated shims
//! kept for one release.

use tcim_diffusion::InfluenceOracle;
use tcim_graph::NodeId;

use crate::concave::ConcaveWrapper;
use crate::error::Result;
use crate::problems::GreedyAlgorithm;
use crate::report::SolverReport;
use crate::spec::{FairnessMode, Objective, ProblemSpec};

/// Configuration shared by the budget-constrained solver shims. New code
/// should build a [`ProblemSpec`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetConfig {
    /// Maximum number of seeds `B`.
    pub budget: usize,
    /// Greedy strategy.
    pub algorithm: GreedyAlgorithm,
    /// Optional candidate pool the seeds must come from (the Instagram
    /// experiment restricts seeds to 5000 random nodes); `None` means every
    /// node is a candidate.
    pub candidates: Option<Vec<NodeId>>,
}

impl BudgetConfig {
    /// Convenience constructor: budget `B`, lazy greedy, all nodes
    /// candidates. Validates eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] naming `budget` when it is 0.
    pub fn new(budget: usize) -> Result<Self> {
        // Same eager check (and message) as the canonical spec constructor.
        ProblemSpec::budget(budget)?;
        Ok(BudgetConfig { budget, algorithm: GreedyAlgorithm::default(), candidates: None })
    }

    /// The equivalent [`ProblemSpec`] with the given fairness mode (no eager
    /// validation — [`crate::solve`] re-validates, so struct-literal configs
    /// keep their historical solve-time error behavior).
    pub(crate) fn to_spec(&self, fairness: FairnessMode) -> ProblemSpec {
        ProblemSpec {
            objective: Objective::Budget { budget: self.budget },
            fairness,
            algorithm: self.algorithm,
            candidates: self.candidates.clone(),
            deadline: None,
            estimator: None,
        }
    }
}

/// Solves the standard TCIM-BUDGET problem P1 with the greedy heuristic.
///
/// # Errors
///
/// Returns an error on invalid configuration or estimator failures.
#[deprecated(note = "build a ProblemSpec and call tcim_core::solve")]
pub fn solve_tcim_budget(
    oracle: &dyn InfluenceOracle,
    config: &BudgetConfig,
) -> Result<SolverReport> {
    crate::solve::solve(oracle, &config.to_spec(FairnessMode::Total))
}

/// Solves the FAIRTCIM-BUDGET surrogate P4 with the greedy heuristic.
///
/// `weights` are the optional per-group multipliers `λ_i` (all 1 when `None`);
/// the paper suggests raising the weight of under-represented groups as an
/// additional lever.
///
/// # Errors
///
/// Returns an error on invalid configuration (including an invalid concave
/// wrapper or wrong-length weight vector) or estimator failures.
#[deprecated(note = "build a ProblemSpec and call tcim_core::solve")]
pub fn solve_fair_tcim_budget(
    oracle: &dyn InfluenceOracle,
    config: &BudgetConfig,
    wrapper: ConcaveWrapper,
    weights: Option<Vec<f64>>,
) -> Result<SolverReport> {
    crate::solve::solve(oracle, &config.to_spec(FairnessMode::Concave { wrapper, weights }))
}

#[cfg(test)]
#[allow(deprecated)] // shim-compat tests exercising the legacy surface
mod tests {
    use super::*;
    use std::sync::Arc;
    use tcim_diffusion::{Deadline, WorldEstimator, WorldsConfig};
    use tcim_graph::generators::{illustrative_example, IllustrativeConfig};
    use tcim_graph::{Graph, GraphBuilder, GroupId};

    fn estimator(graph: Graph, deadline: Deadline, worlds: usize) -> WorldEstimator {
        WorldEstimator::new(
            Arc::new(graph),
            deadline,
            &WorldsConfig { num_worlds: worlds, seed: 7, ..Default::default() },
        )
        .unwrap()
    }

    /// Two stars: a large one in group 0 (hub 0, 10 leaves) and a small one
    /// in group 1 (hub 11, 4 leaves); no inter-group edges, probability 1.
    fn two_star_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let hub0 = b.add_node(GroupId(0));
        let leaves0 = b.add_nodes(10, GroupId(0));
        let hub1 = b.add_node(GroupId(1));
        let leaves1 = b.add_nodes(4, GroupId(1));
        for &l in &leaves0 {
            b.add_edge(hub0, l, 1.0).unwrap();
        }
        for &l in &leaves1 {
            b.add_edge(hub1, l, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn p1_greedy_picks_the_highest_influence_hubs() {
        let est = estimator(two_star_graph(), Deadline::unbounded(), 4);
        let report = solve_tcim_budget(&est, &BudgetConfig::new(2).unwrap()).unwrap();
        assert_eq!(report.num_seeds(), 2);
        assert!(report.seeds.contains(&NodeId(0)));
        assert!(report.seeds.contains(&NodeId(11)));
        assert!((report.influence.total() - 16.0).abs() < 1e-9);
        assert_eq!(report.label, "P1");
        assert_eq!(report.iterations.len(), 2);
        // Shims delegate to the unified path, so reports echo their spec.
        assert!(report.spec.as_deref().unwrap().contains("budget:2"));
    }

    #[test]
    fn p1_with_budget_one_prefers_the_majority_hub_and_is_unfair() {
        let est = estimator(two_star_graph(), Deadline::unbounded(), 4);
        let report = solve_tcim_budget(&est, &BudgetConfig::new(1).unwrap()).unwrap();
        assert_eq!(report.seeds, vec![NodeId(0)]);
        // Group 1 gets nothing -> disparity = 1.0.
        assert!(report.disparity() > 0.99);
    }

    #[test]
    fn p4_with_budget_one_is_identical_but_with_budget_two_equalizes() {
        let est = estimator(two_star_graph(), Deadline::unbounded(), 4);
        let fair =
            solve_fair_tcim_budget(&est, &BudgetConfig::new(2).unwrap(), ConcaveWrapper::Log, None)
                .unwrap();
        // With two seeds the fair solution covers both groups completely.
        assert!(fair.disparity() < 1e-9);
        assert!((fair.influence.total() - 16.0).abs() < 1e-9);
        assert!(fair.label.contains("P4"));
    }

    #[test]
    fn all_greedy_variants_agree_on_small_instances() {
        let est = estimator(two_star_graph(), Deadline::unbounded(), 4);
        let lazy = solve_tcim_budget(&est, &BudgetConfig::new(2).unwrap()).unwrap();
        let plain = solve_tcim_budget(
            &est,
            &BudgetConfig { budget: 2, algorithm: GreedyAlgorithm::Greedy, candidates: None },
        )
        .unwrap();
        assert_eq!(lazy.seeds, plain.seeds);
        assert!(lazy.gain_evaluations <= plain.gain_evaluations);

        let stochastic = solve_tcim_budget(
            &est,
            &BudgetConfig {
                budget: 2,
                algorithm: GreedyAlgorithm::Stochastic { epsilon: 0.05, seed: 3 },
                candidates: None,
            },
        )
        .unwrap();
        assert_eq!(stochastic.num_seeds(), 2);
        assert!(stochastic.influence.total() >= 0.8 * plain.influence.total());
    }

    #[test]
    fn candidate_restriction_is_honored() {
        let est = estimator(two_star_graph(), Deadline::unbounded(), 4);
        let config = BudgetConfig {
            budget: 2,
            algorithm: GreedyAlgorithm::Lazy,
            candidates: Some(vec![NodeId(1), NodeId(12)]),
        };
        let report = solve_tcim_budget(&est, &config).unwrap();
        assert!(report.seeds.iter().all(|s| [NodeId(1), NodeId(12)].contains(s)));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let est = estimator(two_star_graph(), Deadline::unbounded(), 2);
        // Degenerate budgets fail eagerly at construction, naming the field…
        let err = BudgetConfig::new(0).unwrap_err().to_string();
        assert!(err.contains("'budget'"), "{err}");
        // …and a struct literal that bypasses `new` still fails at solve
        // time.
        let zero = BudgetConfig { budget: 0, algorithm: GreedyAlgorithm::Lazy, candidates: None };
        assert!(solve_tcim_budget(&est, &zero).is_err());
        let bad_candidate = BudgetConfig {
            budget: 1,
            algorithm: GreedyAlgorithm::Lazy,
            candidates: Some(vec![NodeId(999)]),
        };
        assert!(solve_tcim_budget(&est, &bad_candidate).is_err());
        let empty_candidates =
            BudgetConfig { budget: 1, algorithm: GreedyAlgorithm::Lazy, candidates: Some(vec![]) };
        assert!(solve_tcim_budget(&est, &empty_candidates).is_err());
        let bad_epsilon = BudgetConfig {
            budget: 1,
            algorithm: GreedyAlgorithm::Stochastic { epsilon: 1.5, seed: 0 },
            candidates: None,
        };
        assert!(solve_tcim_budget(&est, &bad_epsilon).is_err());
        assert!(solve_fair_tcim_budget(
            &est,
            &BudgetConfig::new(1).unwrap(),
            ConcaveWrapper::Power(2.0),
            None
        )
        .is_err());
        assert!(solve_fair_tcim_budget(
            &est,
            &BudgetConfig::new(1).unwrap(),
            ConcaveWrapper::Log,
            Some(vec![1.0])
        )
        .is_err());
        assert!(solve_fair_tcim_budget(
            &est,
            &BudgetConfig::new(1).unwrap(),
            ConcaveWrapper::Log,
            Some(vec![1.0, -2.0])
        )
        .is_err());
    }

    #[test]
    fn fair_solution_reduces_disparity_on_the_illustrative_graph() {
        let (graph, _) = illustrative_example(&IllustrativeConfig::default()).unwrap();
        let est = estimator(graph, Deadline::finite(2), 128);
        let unfair = solve_tcim_budget(&est, &BudgetConfig::new(2).unwrap()).unwrap();
        let fair =
            solve_fair_tcim_budget(&est, &BudgetConfig::new(2).unwrap(), ConcaveWrapper::Log, None)
                .unwrap();
        assert!(
            fair.disparity() < unfair.disparity(),
            "fair disparity {} should be below unfair disparity {}",
            fair.disparity(),
            unfair.disparity()
        );
        // The fair solution pays at most a bounded cost in total influence and
        // must keep some of it.
        assert!(fair.influence.total() > 0.0);
        assert!(fair.influence.total() <= unfair.influence.total() + 1e-9);
    }

    #[test]
    fn per_group_weights_can_boost_the_minority_further() {
        let (graph, _) = illustrative_example(&IllustrativeConfig::default()).unwrap();
        let est = estimator(graph, Deadline::finite(2), 64);
        let unweighted =
            solve_fair_tcim_budget(&est, &BudgetConfig::new(1).unwrap(), ConcaveWrapper::Log, None)
                .unwrap();
        let weighted = solve_fair_tcim_budget(
            &est,
            &BudgetConfig::new(1).unwrap(),
            ConcaveWrapper::Log,
            Some(vec![1.0, 50.0]),
        )
        .unwrap();
        let minority = GroupId(1);
        assert!(weighted.influence.group(minority) >= unweighted.influence.group(minority) - 1e-9);
    }
}

//! Erdős–Rényi `G(n, p)` generator.
//!
//! Used as a homogeneous (single effective group or randomly grouped)
//! control case: on an ER graph with random group labels the standard TCIM
//! solution exhibits little disparity, which makes it a useful negative
//! control for the fairness experiments and tests.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::{GroupId, NodeId};

/// Configuration for the Erdős–Rényi generator.
#[derive(Debug, Clone)]
pub struct ErdosRenyiConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Probability of an undirected tie between any pair of nodes.
    pub connection_probability: f64,
    /// Activation probability assigned to every edge.
    pub edge_probability: f64,
    /// Number of groups; nodes are assigned to groups uniformly at random.
    pub num_groups: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Samples an undirected Erdős–Rényi graph with uniformly random group labels.
///
/// # Errors
///
/// Returns an error if a probability is outside `[0, 1]` or `num_groups` is 0.
pub fn erdos_renyi(config: &ErdosRenyiConfig) -> Result<Graph> {
    if !(0.0..=1.0).contains(&config.connection_probability)
        || config.connection_probability.is_nan()
    {
        return Err(GraphError::InvalidParameter {
            message: format!(
                "connection probability {} is not in [0, 1]",
                config.connection_probability
            ),
        });
    }
    if !(0.0..=1.0).contains(&config.edge_probability) || config.edge_probability.is_nan() {
        return Err(GraphError::InvalidProbability { value: config.edge_probability });
    }
    if config.num_groups == 0 {
        return Err(GraphError::InvalidParameter {
            message: "num_groups must be at least 1".to_string(),
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::with_capacity(config.num_nodes, config.num_nodes * 4);
    for _ in 0..config.num_nodes {
        let group = GroupId::from_index(rng.random_range(0..config.num_groups));
        builder.add_node(group);
    }
    for u in 0..config.num_nodes {
        for v in (u + 1)..config.num_nodes {
            if config.connection_probability > 0.0 && rng.random_bool(config.connection_probability)
            {
                builder.add_undirected_edge(
                    NodeId::from_index(u),
                    NodeId::from_index(v),
                    config.edge_probability,
                )?;
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_expected_density() {
        let cfg = ErdosRenyiConfig {
            num_nodes: 200,
            connection_probability: 0.05,
            edge_probability: 0.1,
            num_groups: 2,
            seed: 11,
        };
        let g = erdos_renyi(&cfg).unwrap();
        assert_eq!(g.num_nodes(), 200);
        // Expected undirected edges: C(200,2) * 0.05 = 995; directed = 1990.
        let m = g.num_edges();
        assert!(m > 1500 && m < 2500, "unexpected edge count {m}");
        assert_eq!(g.num_groups(), 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = ErdosRenyiConfig {
            num_nodes: 60,
            connection_probability: 0.1,
            edge_probability: 0.2,
            num_groups: 3,
            seed: 5,
        };
        assert_eq!(erdos_renyi(&cfg).unwrap(), erdos_renyi(&cfg).unwrap());
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut cfg = ErdosRenyiConfig {
            num_nodes: 10,
            connection_probability: 2.0,
            edge_probability: 0.1,
            num_groups: 1,
            seed: 0,
        };
        assert!(erdos_renyi(&cfg).is_err());
        cfg.connection_probability = 0.5;
        cfg.num_groups = 0;
        assert!(erdos_renyi(&cfg).is_err());
        cfg.num_groups = 1;
        cfg.edge_probability = f64::NAN;
        assert!(erdos_renyi(&cfg).is_err());
    }

    #[test]
    fn zero_connection_probability_yields_isolated_nodes() {
        let cfg = ErdosRenyiConfig {
            num_nodes: 25,
            connection_probability: 0.0,
            edge_probability: 0.5,
            num_groups: 2,
            seed: 1,
        };
        let g = erdos_renyi(&cfg).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 25);
    }
}

//! Long-lived oracle state shared across queries.
//!
//! Every figure binary and example builds its graph and estimator from
//! scratch per run; a serving process cannot afford that. The
//! [`OracleCache`] keeps the expensive, *reusable* pieces alive and keyed:
//!
//! * built dataset graphs, keyed by `(dataset, dataset seed)`,
//! * [`LtWeights`] tables, keyed the same way (pure functions of the graph),
//! * live-edge [`WorldCollection`]s, keyed by `(dataset, model, world count,
//!   estimator seed)` — deliberately **not** by deadline: a sampled world is
//!   a set of live edges, and the deadline only bounds the BFS that later
//!   runs on it, so one collection backs oracles for every `τ`,
//! * fully built [`Estimator`]s, keyed by the complete [`OracleSpec`].
//!
//! Every map is capacity-bounded with FIFO eviction (keys embed
//! request-controlled seeds and sample counts, so an unbounded cache fed
//! adversarial or merely long-lived traffic would grow until OOM); an
//! evicted entry rebuilds deterministically on its next use.
//!
//! # Determinism
//!
//! Cache keys exclude the parallelism knob, and every sampling path derives
//! sample `i` from `seed + i` (see `tcim_diffusion::ParallelismConfig`), so
//! a cache hit returns answers bitwise-identical to a cold build at any
//! thread count — the service-level tests and the CI golden files pin this
//! down.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tcim_core::{Estimator, EstimatorConfig};
use tcim_datasets::registry::Dataset;
use tcim_diffusion::{Deadline, LtWeights, WorldCollection, WorldsConfig};
use tcim_graph::Graph;

use crate::error::{Result, ServiceError};

/// Which diffusion model the oracle evaluates under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Independent cascade (the paper's default).
    IndependentCascade,
    /// Linear threshold (via LT live-edge worlds).
    LinearThreshold,
}

impl ModelKind {
    /// Protocol name ("ic" / "lt").
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::IndependentCascade => "ic",
            ModelKind::LinearThreshold => "lt",
        }
    }

    /// Parses a protocol name.
    ///
    /// # Errors
    ///
    /// Returns a bad-request error naming the unknown model.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "ic" => Ok(ModelKind::IndependentCascade),
            "lt" => Ok(ModelKind::LinearThreshold),
            other => Err(ServiceError::bad_request(format!(
                "unknown model '{other}' (expected 'ic' or 'lt')"
            ))),
        }
    }
}

/// A dataset reference: which registry entry (a named dataset or an inline
/// [`ScenarioSpec`](tcim_datasets::ScenarioSpec)) plus the generation seed.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Registry entry.
    pub dataset: Dataset,
    /// Seed the surrogate / scenario generators use.
    pub seed: u64,
}

impl DatasetSpec {
    /// Resolves a protocol dataset name ("synthetic", "rice-facebook", …)
    /// against the registry. Scenario datasets are not named — they arrive
    /// as inline `"scenario"` objects and are constructed directly.
    ///
    /// # Errors
    ///
    /// Returns a bad-request error listing the valid names.
    pub fn parse(name: &str, seed: u64) -> Result<Self> {
        for dataset in Dataset::ALL {
            if dataset.name() == name {
                return Ok(DatasetSpec { dataset, seed });
            }
        }
        let known: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
        Err(ServiceError::bad_request(format!(
            "unknown dataset '{name}' (expected one of: {})",
            known.join(", ")
        )))
    }

    fn fingerprint(&self) -> String {
        match &self.dataset {
            // A scenario's cache identity is its canonical fingerprint: two
            // requests inlining the same spec (same family, size, groups,
            // weights) and seed share graphs, LT tables and world pools
            // exactly like two requests naming the same dataset.
            Dataset::Scenario(spec) => format!("scenario:{}#{}", spec.fingerprint(), self.seed),
            named => format!("{}#{}", named.name(), self.seed),
        }
    }
}

/// The registry's stable dataset name without building the graph
/// (re-exported shim over [`Dataset::name`]).
pub fn dataset_name(dataset: &Dataset) -> &'static str {
    dataset.name()
}

/// Everything that identifies one influence oracle: the dataset, the
/// diffusion model, the deadline and the estimator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleSpec {
    /// Which graph.
    pub dataset: DatasetSpec,
    /// Which diffusion model.
    pub model: ModelKind,
    /// The deadline `τ`.
    pub deadline: Deadline,
    /// Which estimator backend with which knobs.
    pub estimator: EstimatorConfig,
}

impl OracleSpec {
    /// Derives the oracle identity from a [`tcim_core::ProblemSpec`]: the
    /// spec's declared deadline and estimator become the cache coordinates,
    /// so "which oracle serves this solve" is a pure function of
    /// `(dataset, model, spec)`. Specs without a deadline default to
    /// unbounded; specs without an estimator default to the default worlds
    /// config — exactly the protocol defaults.
    pub fn for_spec(dataset: DatasetSpec, model: ModelKind, spec: &tcim_core::ProblemSpec) -> Self {
        OracleSpec {
            dataset,
            model,
            deadline: spec.deadline.unwrap_or_default(),
            estimator: spec.estimator.clone().unwrap_or_default(),
        }
    }

    /// A canonical cache key. The estimator part is
    /// [`EstimatorConfig::fingerprint`] — the same encoding
    /// `ProblemSpec::canonical` embeds — and excludes the parallelism knob
    /// on purpose: thread counts never change results, so requests differing
    /// only in parallelism must share an entry.
    pub fn fingerprint(&self) -> String {
        let mut key = self.dataset.fingerprint();
        let _ = write!(key, "|{}|tau={}", self.model.label(), self.deadline);
        let _ = write!(key, "|{}", self.estimator.fingerprint());
        key
    }
}

/// Hit/miss counters of one [`OracleCache`], for observability (never part
/// of a response — responses must not depend on cache temperature).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Oracle lookups answered from the cache.
    pub oracle_hits: u64,
    /// Oracle lookups that had to build.
    pub oracle_misses: u64,
    /// World-collection lookups answered from the cache (including the
    /// cross-deadline reuse hits that make repeated queries cheap).
    pub world_hits: u64,
    /// World-collection lookups that had to sample.
    pub world_misses: u64,
    /// Dataset-graph lookups answered from the cache.
    pub graph_hits: u64,
    /// Dataset-graph lookups that had to generate.
    pub graph_misses: u64,
}

impl CacheStats {
    /// Oracle hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn oracle_hit_rate(&self) -> Option<f64> {
        hit_rate(self.oracle_hits, self.oracle_misses)
    }

    /// World-pool hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn world_hit_rate(&self) -> Option<f64> {
        hit_rate(self.world_hits, self.world_misses)
    }
}

fn hit_rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

/// An insertion-ordered map with a capacity bound. Cache keys are
/// request-controlled (`dataset_seed`, `estimator_seed`, `samples`, …), so
/// an unbounded map would let a long-lived engine grow until OOM; past the
/// bound the oldest entry is evicted (FIFO). Eviction never changes
/// answers — rebuilding an evicted entry is deterministic, and outstanding
/// `Arc` handles keep in-flight queries alive.
struct BoundedMap<V> {
    capacity: usize,
    order: VecDeque<String>,
    entries: HashMap<String, V>,
}

impl<V> BoundedMap<V> {
    fn new(capacity: usize) -> Self {
        BoundedMap { capacity: capacity.max(1), order: VecDeque::new(), entries: HashMap::new() }
    }

    fn get(&self, key: &str) -> Option<&V> {
        self.entries.get(key)
    }

    /// Inserts `value` under `key` unless the key is already present (the
    /// first build wins, so concurrent builders converge on one entry), then
    /// returns the stored value.
    fn insert_or_get(&mut self, key: String, value: V) -> &V {
        if !self.entries.contains_key(&key) {
            if self.entries.len() >= self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                }
            }
            self.order.push_back(key.clone());
            self.entries.insert(key.clone(), value);
        }
        &self.entries[&key]
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Retained dataset graphs / LT tables (small, and few distinct datasets).
const GRAPH_CAPACITY: usize = 8;
/// Retained live-edge world collections (the big allocations).
const WORLDS_CAPACITY: usize = 32;
/// Retained built estimators (worlds-backed ones are views into the world
/// pool; RIS entries own their sketches).
const ORACLE_CAPACITY: usize = 128;

struct CacheMaps {
    graphs: BoundedMap<Arc<Graph>>,
    lt_weights: BoundedMap<Arc<LtWeights>>,
    worlds: BoundedMap<Arc<WorldCollection>>,
    oracles: BoundedMap<Arc<Estimator>>,
}

impl Default for CacheMaps {
    fn default() -> Self {
        CacheMaps {
            graphs: BoundedMap::new(GRAPH_CAPACITY),
            lt_weights: BoundedMap::new(GRAPH_CAPACITY),
            worlds: BoundedMap::new(WORLDS_CAPACITY),
            oracles: BoundedMap::new(ORACLE_CAPACITY),
        }
    }
}

/// Shared, thread-safe cache of graphs, LT weight tables, live-edge world
/// collections and fully built estimators. See the module docs for the
/// keying scheme and the determinism contract.
#[derive(Default)]
pub struct OracleCache {
    maps: Mutex<CacheMaps>,
    /// Per-key in-flight build locks: when several cold requests race for
    /// the same entry, exactly one samples/builds while the rest wait on
    /// its lock and then take the cache hit — without this, a parallel
    /// batch over one world pool would sample it once per worker thread
    /// and throw all but one result away.
    building: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    oracle_hits: AtomicU64,
    oracle_misses: AtomicU64,
    world_hits: AtomicU64,
    world_misses: AtomicU64,
    graph_hits: AtomicU64,
    graph_misses: AtomicU64,
}

impl OracleCache {
    /// An empty cache.
    pub fn new() -> Self {
        OracleCache::default()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            oracle_hits: self.oracle_hits.load(Ordering::Relaxed),
            oracle_misses: self.oracle_misses.load(Ordering::Relaxed),
            world_hits: self.world_hits.load(Ordering::Relaxed),
            world_misses: self.world_misses.load(Ordering::Relaxed),
            graph_hits: self.graph_hits.load(Ordering::Relaxed),
            graph_misses: self.graph_misses.load(Ordering::Relaxed),
        }
    }

    /// Takes the per-key build lock for `key`; `build` runs only if a
    /// re-check under the lock still misses. Lock order is strictly
    /// outer-entry -> inner-entry (oracle -> worlds -> graph), so the
    /// per-key locks cannot cycle.
    fn build_once<V: Clone>(
        &self,
        key: &str,
        lookup: impl Fn(&CacheMaps) -> Option<V>,
        on_hit: impl Fn(),
        on_miss: impl Fn(),
        build: impl FnOnce() -> Result<V>,
        store: impl FnOnce(&mut CacheMaps, V) -> V,
    ) -> Result<V> {
        let lock = {
            let mut building = self.building.lock().expect("build-lock registry");
            Arc::clone(building.entry(key.to_string()).or_default())
        };
        let guard = lock.lock().expect("build lock");
        // Re-check under the lock: a concurrent builder may have finished
        // while this request waited, in which case the wait *was* the build.
        if let Some(value) = lookup(&self.maps.lock().expect("cache lock")) {
            on_hit();
            return Ok(value);
        }
        on_miss();
        let result = build();
        let stored = match result {
            Ok(value) => Ok(store(&mut self.maps.lock().expect("cache lock"), value)),
            Err(err) => Err(err),
        };
        drop(guard);
        // Waiters that already hold the Arc proceed normally; future
        // requests re-check the cache before ever reaching the registry.
        self.building.lock().expect("build-lock registry").remove(key);
        stored
    }

    /// The dataset graph for `spec`, built on first use.
    ///
    /// # Errors
    ///
    /// Propagates dataset-generator failures.
    pub fn graph(&self, spec: &DatasetSpec) -> Result<Arc<Graph>> {
        let key = spec.fingerprint();
        if let Some(graph) = self.maps.lock().expect("cache lock").graphs.get(&key) {
            self.graph_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(graph));
        }
        self.build_once(
            &key,
            |maps| maps.graphs.get(&key).map(Arc::clone),
            || {
                self.graph_hits.fetch_add(1, Ordering::Relaxed);
            },
            || {
                self.graph_misses.fetch_add(1, Ordering::Relaxed);
            },
            || {
                let bundle = spec.dataset.build(spec.seed).map_err(|err| {
                    ServiceError::bad_request(format!(
                        "dataset '{}' failed to build: {err}",
                        spec.dataset.name()
                    ))
                })?;
                Ok(Arc::new(bundle.graph))
            },
            |maps, graph| Arc::clone(maps.graphs.insert_or_get(key.clone(), graph)),
        )
    }

    /// The LT weight table for `spec`'s graph, built on first use.
    ///
    /// # Errors
    ///
    /// Propagates dataset-generator failures.
    pub fn lt_weights(&self, spec: &DatasetSpec) -> Result<Arc<LtWeights>> {
        let key = format!("lt|{}", spec.fingerprint());
        if let Some(weights) = self.maps.lock().expect("cache lock").lt_weights.get(&key) {
            return Ok(Arc::clone(weights));
        }
        self.build_once(
            &key,
            |maps| maps.lt_weights.get(&key).map(Arc::clone),
            || {},
            || {},
            || {
                let graph = self.graph(spec)?;
                Ok(Arc::new(LtWeights::from_graph(&graph)))
            },
            |maps, weights| Arc::clone(maps.lt_weights.insert_or_get(key.clone(), weights)),
        )
    }

    /// A live-edge world collection for `(dataset, model, worlds config)`,
    /// sampled on first use and shared across every deadline thereafter.
    ///
    /// # Errors
    ///
    /// Propagates sampling failures (zero worlds).
    pub fn worlds(
        &self,
        spec: &DatasetSpec,
        model: ModelKind,
        config: &WorldsConfig,
    ) -> Result<Arc<WorldCollection>> {
        let key = format!(
            "{}|{}|worlds:n={},s={}",
            spec.fingerprint(),
            model.label(),
            config.num_worlds,
            config.seed
        );
        if let Some(worlds) = self.maps.lock().expect("cache lock").worlds.get(&key) {
            self.world_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(worlds));
        }
        self.build_once(
            &key,
            |maps| maps.worlds.get(&key).map(Arc::clone),
            || {
                self.world_hits.fetch_add(1, Ordering::Relaxed);
            },
            || {
                self.world_misses.fetch_add(1, Ordering::Relaxed);
            },
            || {
                let graph = self.graph(spec)?;
                let collection = match model {
                    ModelKind::IndependentCascade => WorldCollection::sample(&graph, config)?,
                    ModelKind::LinearThreshold => {
                        let weights = self.lt_weights(spec)?;
                        WorldCollection::sample_lt(&graph, &weights, config)?
                    }
                };
                Ok(Arc::new(collection))
            },
            |maps, collection| Arc::clone(maps.worlds.insert_or_get(key.clone(), collection)),
        )
    }

    /// The fully built oracle for `spec`, from cache when warm.
    ///
    /// Worlds-backed oracles reuse the deadline-independent world pool, so a
    /// new `τ` against a warm dataset only pays a view construction; RIS and
    /// Monte-Carlo oracles are cached by their full spec.
    ///
    /// # Errors
    ///
    /// Returns a bad-request error for unsupported combinations (the LT
    /// model requires the worlds estimator) and propagates construction
    /// failures.
    pub fn oracle(&self, spec: &OracleSpec) -> Result<Arc<Estimator>> {
        let key = format!("oracle|{}", spec.fingerprint());
        if let Some(oracle) = self.maps.lock().expect("cache lock").oracles.get(&key) {
            self.oracle_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(oracle));
        }
        self.build_once(
            &key,
            |maps| maps.oracles.get(&key).map(Arc::clone),
            || {
                self.oracle_hits.fetch_add(1, Ordering::Relaxed);
            },
            || {
                self.oracle_misses.fetch_add(1, Ordering::Relaxed);
            },
            || Ok(Arc::new(self.build_oracle(spec)?)),
            |maps, oracle| Arc::clone(maps.oracles.insert_or_get(key.clone(), oracle)),
        )
    }

    fn build_oracle(&self, spec: &OracleSpec) -> Result<Estimator> {
        let graph = self.graph(&spec.dataset)?;
        match (&spec.estimator, spec.model) {
            (EstimatorConfig::Worlds(config), model) => {
                let worlds = self.worlds(&spec.dataset, model, config)?;
                Ok(spec.estimator.build_with_worlds(graph, worlds, spec.deadline)?)
            }
            (_, ModelKind::LinearThreshold) => Err(ServiceError::bad_request(
                "the linear-threshold model requires the worlds estimator".to_string(),
            )),
            (_, ModelKind::IndependentCascade) => Ok(spec.estimator.build(graph, spec.deadline)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcim_core::{RisConfig, WorldsConfig};
    use tcim_diffusion::{AdaptiveRis, InfluenceOracle, ParallelismConfig};

    fn spec(deadline: u32, num_worlds: usize) -> OracleSpec {
        OracleSpec {
            dataset: DatasetSpec { dataset: Dataset::Illustrative, seed: 1 },
            model: ModelKind::IndependentCascade,
            deadline: Deadline::finite(deadline),
            estimator: EstimatorConfig::Worlds(WorldsConfig {
                num_worlds,
                seed: 3,
                ..Default::default()
            }),
        }
    }

    #[test]
    fn oracles_are_cached_and_worlds_shared_across_deadlines() {
        let cache = OracleCache::new();
        let first = cache.oracle(&spec(2, 16)).unwrap();
        let again = cache.oracle(&spec(2, 16)).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "same spec must hit");

        // Different deadline: new oracle, same sampled worlds.
        let other = cache.oracle(&spec(5, 16)).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        let stats = cache.stats();
        assert_eq!(stats.oracle_hits, 1);
        assert_eq!(stats.oracle_misses, 2);
        assert_eq!(stats.world_misses, 1, "the collection samples once");
        assert_eq!(stats.world_hits, 1, "the second deadline reuses it");
        assert_eq!(stats.graph_misses, 1, "the graph generates once");
        assert!(stats.graph_hits >= 1, "later builds reuse the graph");
        assert_eq!(stats.oracle_hit_rate(), Some(1.0 / 3.0));
        assert_eq!(stats.world_hit_rate(), Some(0.5));
        assert_eq!(CacheStats::default().oracle_hit_rate(), None);

        let (Estimator::Worlds(a), Estimator::Worlds(b)) = (first.as_ref(), other.as_ref()) else {
            panic!("worlds estimators expected");
        };
        assert!(Arc::ptr_eq(&a.worlds_arc(), &b.worlds_arc()));
    }

    #[test]
    fn fingerprints_separate_configs_but_not_parallelism() {
        let a = spec(2, 16).fingerprint();
        assert_ne!(a, spec(3, 16).fingerprint());
        assert_ne!(a, spec(2, 17).fingerprint());
        let mut serial = spec(2, 16);
        serial.estimator = EstimatorConfig::Worlds(WorldsConfig {
            num_worlds: 16,
            seed: 3,
            parallelism: ParallelismConfig::serial(),
        });
        assert_eq!(a, serial.fingerprint(), "parallelism must not split cache entries");

        let ris = OracleSpec {
            estimator: EstimatorConfig::Ris(RisConfig {
                num_sets: 64,
                seed: 3,
                adaptive: Some(AdaptiveRis::default()),
                ..Default::default()
            }),
            ..spec(2, 16)
        };
        assert_ne!(a, ris.fingerprint());
        assert!(ris.fingerprint().contains("adaptive"));
    }

    #[test]
    fn model_and_dataset_names_parse_and_reject() {
        assert_eq!(ModelKind::parse("ic").unwrap(), ModelKind::IndependentCascade);
        assert_eq!(ModelKind::parse("lt").unwrap(), ModelKind::LinearThreshold);
        assert!(ModelKind::parse("sir").is_err());
        let spec = DatasetSpec::parse("synthetic", 7).unwrap();
        assert_eq!(spec.dataset, Dataset::Synthetic);
        let err = DatasetSpec::parse("twitter", 7).unwrap_err();
        assert!(err.to_string().contains("synthetic"), "should list valid names: {err}");
    }

    #[test]
    fn bounded_maps_evict_fifo_and_keep_serving() {
        let mut map = BoundedMap::new(2);
        map.insert_or_get("a".into(), 1);
        map.insert_or_get("b".into(), 2);
        // Re-inserting an existing key keeps the first value and evicts
        // nothing.
        assert_eq!(*map.insert_or_get("a".into(), 99), 1);
        assert_eq!(map.len(), 2);
        // A third key evicts the oldest ("a"), not the newest.
        map.insert_or_get("c".into(), 3);
        assert_eq!(map.len(), 2);
        assert!(map.get("a").is_none());
        assert_eq!(map.get("b"), Some(&2));
        assert_eq!(map.get("c"), Some(&3));

        // End-to-end: more distinct oracle specs than ORACLE_CAPACITY must
        // not grow the cache without bound, and an evicted spec re-serves
        // (deterministically) instead of erroring.
        let cache = OracleCache::new();
        for seed in 0..(ORACLE_CAPACITY as u64 + 8) {
            let mut overflowing = spec(2, 4);
            overflowing.estimator =
                EstimatorConfig::Worlds(WorldsConfig { num_worlds: 4, seed, ..Default::default() });
            cache.oracle(&overflowing).unwrap();
        }
        let maps = cache.maps.lock().unwrap();
        assert_eq!(maps.oracles.len(), ORACLE_CAPACITY);
        assert_eq!(maps.worlds.len(), WORLDS_CAPACITY);
    }

    #[test]
    fn lt_requires_the_worlds_estimator() {
        let cache = OracleCache::new();
        let bad = OracleSpec {
            model: ModelKind::LinearThreshold,
            estimator: EstimatorConfig::MonteCarlo { samples: 8, seed: 0 },
            ..spec(2, 16)
        };
        assert!(cache.oracle(&bad).is_err());
        let good = OracleSpec { model: ModelKind::LinearThreshold, ..spec(2, 16) };
        let oracle = cache.oracle(&good).unwrap();
        assert!(oracle.evaluate(&[tcim_graph::NodeId(0)]).unwrap().total() >= 1.0);
    }
}

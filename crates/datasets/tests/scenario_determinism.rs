//! Determinism contract for the scenario generators: the graph a
//! [`ScenarioSpec`] builds is a pure function of `(spec, seed)` — bitwise
//! identical across repeated builds and under rayon pools of any size (the
//! generators are sequential by design, so a thread-count dependence would
//! mean shared-state leakage). The service layer's fingerprint-keyed caches
//! and the CI golden files both stand on this.

use tcim_datasets::scenario::ScenarioSpec;
use tcim_diffusion::ParallelismConfig;

/// One representative spec per generator family and weight model.
fn representative_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::sbm(150, 0.06, 0.01).unwrap(),
        ScenarioSpec::sbm(150, 0.06, 0.01)
            .unwrap()
            .with_group_fractions(vec![0.5, 0.3, 0.2])
            .unwrap()
            .with_weighted_cascade(),
        ScenarioSpec::barabasi_albert(150, 3).unwrap().with_homophily_bias(4.0).unwrap(),
        ScenarioSpec::barabasi_albert(150, 3).unwrap().with_lt_weights(),
        ScenarioSpec::watts_strogatz(120, 3, 0.2).unwrap(),
        ScenarioSpec::preset("synthetic-sbm").unwrap(),
    ]
}

#[test]
fn scenario_graphs_are_bitwise_identical_at_any_thread_count() {
    for spec in representative_specs() {
        let reference = spec.build(7).unwrap();
        for threads in [1usize, 2, 8] {
            let built = ParallelismConfig::fixed(threads).run(|| spec.build(7)).unwrap();
            // Graph equality compares the CSR arrays including every f64
            // probability, so this is a bitwise check.
            assert_eq!(
                reference,
                built,
                "{} differs inside a {threads}-thread pool",
                spec.fingerprint()
            );
        }
    }
}

#[test]
fn repeated_builds_are_bitwise_identical_and_seeds_separate() {
    for spec in representative_specs() {
        let a = spec.build(7).unwrap();
        let b = spec.build(7).unwrap();
        assert_eq!(a, b, "{} must rebuild identically", spec.fingerprint());
        for (pa, pb) in a.edges().zip(b.edges()) {
            assert_eq!(pa.2.to_bits(), pb.2.to_bits(), "probability bits differ");
        }
        let other = spec.build(8).unwrap();
        assert_ne!(a, other, "{} must vary with the seed", spec.fingerprint());
    }
}

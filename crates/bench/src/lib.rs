//! Experiment plumbing shared by the figure-regeneration binaries.
//!
//! Every binary in `src/bin` regenerates one figure (or table) of the paper:
//! it builds the relevant dataset, runs the relevant solvers, prints an
//! aligned table with the same rows/series the paper reports and writes a CSV
//! copy under `target/experiments/`. Absolute numbers differ from the paper
//! (different random draws, surrogate datasets), but the qualitative shape —
//! who wins, by roughly what factor, where the crossovers fall — is the
//! reproduction target; `EXPERIMENTS.md` records the comparison.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tcim_core::{solve, ConcaveWrapper, CoverReport, FairnessMode, ProblemSpec, SolverReport};
use tcim_diffusion::{Deadline, WorldEstimator, WorldsConfig};
use tcim_graph::{Graph, NodeId};

/// Command-line arguments understood by every experiment binary.
///
/// ```text
/// --samples N     override the number of live-edge worlds
/// --seed N        RNG seed for dataset generation and estimation
/// --part a|b|c    run only one panel of a multi-panel figure
/// --budget N      override the seed budget
/// --scale F       scale factor for the Instagram surrogate
/// --out DIR       directory for CSV output (default target/experiments)
/// --full          use the paper's full sample counts instead of quick ones
/// ```
#[derive(Debug, Clone)]
pub struct Args {
    /// Optional override of the Monte-Carlo sample / world count.
    pub samples: Option<usize>,
    /// RNG seed shared by dataset generation and estimation.
    pub seed: u64,
    /// Optional figure panel selector (`a`, `b`, `c`).
    pub part: Option<String>,
    /// Optional override of the seed budget.
    pub budget: Option<usize>,
    /// Scale factor for the Instagram surrogate.
    pub scale: Option<f64>,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Use the paper's full sample counts (slower).
    pub full: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            samples: None,
            seed: 42,
            part: None,
            budget: None,
            scale: None,
            out_dir: PathBuf::from("target/experiments"),
            full: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`. Unknown flags are ignored with a warning so
    /// the binaries stay forgiving in scripts, but a *malformed value* for a
    /// known flag exits with a message naming the bad input (it used to be
    /// silently dropped, so `--samples 10k` would quietly run the default).
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit iterator of arguments.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag and the offending value when a
    /// value is missing or fails to parse.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        fn value<I: Iterator<Item = String>>(iter: &mut I, flag: &str) -> Result<String, String> {
            iter.next().ok_or_else(|| format!("missing value for {flag}"))
        }
        fn parsed_value<T: std::str::FromStr, I: Iterator<Item = String>>(
            iter: &mut I,
            flag: &str,
            expected: &str,
        ) -> Result<T, String> {
            let raw = value(iter, flag)?;
            raw.parse()
                .map_err(|_| format!("invalid value '{raw}' for {flag} (expected {expected})"))
        }

        let mut parsed = Args::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--samples" => {
                    parsed.samples =
                        Some(parsed_value(&mut iter, "--samples", "a positive integer")?);
                }
                "--seed" => parsed.seed = parsed_value(&mut iter, "--seed", "an integer")?,
                "--part" => parsed.part = Some(value(&mut iter, "--part")?),
                "--budget" => {
                    parsed.budget =
                        Some(parsed_value(&mut iter, "--budget", "a positive integer")?);
                }
                "--scale" => parsed.scale = Some(parsed_value(&mut iter, "--scale", "a number")?),
                "--out" => parsed.out_dir = PathBuf::from(value(&mut iter, "--out")?),
                "--full" => parsed.full = true,
                other => eprintln!("warning: ignoring unknown flag '{other}'"),
            }
        }
        Ok(parsed)
    }

    /// Returns `true` if the given panel should run (no `--part` = run all).
    pub fn runs_part(&self, part: &str) -> bool {
        self.part.as_deref().is_none_or(|p| p.eq_ignore_ascii_case(part))
    }

    /// Chooses a sample count: explicit `--samples` wins, then the paper's
    /// full count under `--full`, otherwise the quick default.
    pub fn sample_count(&self, quick: usize, full: usize) -> usize {
        self.samples.unwrap_or(if self.full { full } else { quick })
    }
}

/// A printable experiment table that can also be exported as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title, printed above the header row.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows, one `Vec<String>` per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(c.len()))
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV into `dir/<name>.csv` and returns the path.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut contents = String::new();
        let _ = writeln!(contents, "{}", self.headers.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(contents, "{}", escaped.join(","));
        }
        std::fs::write(&path, contents)?;
        Ok(path)
    }
}

pub mod figures;
pub mod regression;

/// Output of one figure run: `(csv_name, table)` pairs.
pub type FigureOutput = Vec<(String, Table)>;

/// Prints every table of a figure run and writes the CSV copies into the
/// output directory from `args`.
pub fn emit(args: &Args, outputs: &FigureOutput) {
    for (name, table) in outputs {
        table.print();
        println!();
        match table.write_csv(&args.out_dir, name) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("warning: could not write {name}.csv: {err}"),
        }
        println!();
    }
}

/// Formats a deadline for table cells (`inf` for unbounded).
pub fn deadline_label(deadline: Deadline) -> String {
    deadline.to_string()
}

/// Formats a float with three decimals.
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a float with four decimals (used by the sparse Instagram tables).
pub fn fmt4(value: f64) -> String {
    format!("{value:.4}")
}

/// Builds a live-edge-world oracle over `graph`.
pub fn build_oracle(
    graph: Arc<Graph>,
    deadline: Deadline,
    samples: usize,
    seed: u64,
) -> WorldEstimator {
    WorldEstimator::new(
        graph,
        deadline,
        &WorldsConfig { num_worlds: samples, seed, ..Default::default() },
    )
    .expect("world estimator construction cannot fail for positive sample counts")
}

/// Solves P1 and P4 (with the given wrappers) under one budget and returns
/// the reports labelled like the paper's figures. Specs all the way down:
/// one base spec, one fairness variant per wrapper.
pub fn run_budget_suite(
    oracle: &WorldEstimator,
    budget: usize,
    candidates: Option<Vec<NodeId>>,
    wrappers: &[ConcaveWrapper],
) -> Vec<SolverReport> {
    let mut base = ProblemSpec::budget(budget).expect("figure budgets are positive");
    if let Some(pool) = candidates {
        base = base.with_candidates(pool).expect("figure candidate pools are non-empty");
    }
    let mut reports = vec![solve(oracle, &base).expect("P1 solve failed")];
    for &wrapper in wrappers {
        let fair = base.clone().with_fairness_wrapper(wrapper).expect("figure wrappers are valid");
        reports.push(solve(oracle, &fair).expect("P4 solve failed"));
    }
    reports
}

/// Solves P2 and P6 under one quota and returns `(unfair, fair)` in the
/// legacy cover-report shape the figure tables consume.
pub fn run_cover_suite(
    oracle: &WorldEstimator,
    quota: f64,
    max_seeds: Option<usize>,
    candidates: Option<Vec<NodeId>>,
) -> (CoverReport, CoverReport) {
    let mut base = ProblemSpec::cover(quota).expect("figure quotas lie in [0, 1]");
    if let Some(cap) = max_seeds {
        base = base.with_max_seeds(cap).expect("cover objective set above");
    }
    if let Some(pool) = candidates {
        base = base.with_candidates(pool).expect("figure candidate pools are non-empty");
    }
    let fair_spec = base
        .clone()
        .with_fairness(FairnessMode::GroupQuota { group: None })
        .expect("group quota applies to covers");
    let unfair = solve(oracle, &base).expect("P2 solve failed");
    let fair = solve(oracle, &fair_spec).expect("P6 solve failed");
    (CoverReport::from_report(unfair), CoverReport::from_report(fair))
}

/// Summary of a budget-problem report: total fraction, per-group normalized
/// fractions and disparity.
pub fn budget_summary(report: &SolverReport) -> (f64, Vec<f64>, f64) {
    let fairness = report.fairness();
    (fairness.total_fraction, fairness.normalized_utilities.clone(), fairness.disparity)
}

/// Returns the indices of the two groups with the largest pairwise disparity
/// (the paper reports only the most disparate pair on the 4/5-group
/// datasets). Falls back to (0, 1) when fewer than two non-empty groups.
pub fn most_disparate_pair(report: &SolverReport) -> (usize, usize) {
    report.fairness().most_disparate_pair().map(|(a, b)| (a.index(), b.index())).unwrap_or((0, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_all_flags_and_ignore_unknown_ones() {
        let args = Args::parse_from(
            [
                "--samples",
                "50",
                "--seed",
                "9",
                "--part",
                "B",
                "--budget",
                "12",
                "--scale",
                "0.05",
                "--out",
                "/tmp/exp",
                "--full",
                "--bogus",
                "x",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(args.samples, Some(50));
        assert_eq!(args.seed, 9);
        assert!(args.runs_part("b"));
        assert!(!args.runs_part("a"));
        assert_eq!(args.budget, Some(12));
        assert_eq!(args.scale, Some(0.05));
        assert_eq!(args.out_dir, PathBuf::from("/tmp/exp"));
        assert!(args.full);
        assert_eq!(args.sample_count(10, 100), 50);

        let defaults = Args::parse_from(std::iter::empty::<String>()).unwrap();
        assert!(defaults.runs_part("a"));
        assert_eq!(defaults.sample_count(10, 100), 10);
        let full = Args { full: true, ..Args::default() };
        assert_eq!(full.sample_count(10, 100), 100);
    }

    #[test]
    fn malformed_flag_values_error_naming_the_input() {
        let args = |list: &[&str]| Args::parse_from(list.iter().map(|s| s.to_string()));
        let err = args(&["--samples", "10k"]).unwrap_err();
        assert!(err.contains("--samples") && err.contains("10k"), "got: {err}");
        let err = args(&["--seed"]).unwrap_err();
        assert!(err.contains("missing value for --seed"), "got: {err}");
        let err = args(&["--scale", "big"]).unwrap_err();
        assert!(err.contains("'big'"), "got: {err}");
        let err = args(&["--budget", "-3"]).unwrap_err();
        assert!(err.contains("-3"), "got: {err}");
    }

    #[test]
    fn tables_render_and_write_csv() {
        let mut table = Table::new("demo", &["col_a", "b"]);
        table.push_row(vec!["1".into(), "with,comma".into()]);
        table.push_row(vec!["22".into(), "plain".into()]);
        let rendered = table.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("col_a"));

        let dir = std::env::temp_dir().join("fairtcim-bench-tests");
        let path = table.write_csv(&dir, "demo").unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert!(csv.starts_with("col_a,b\n"));
        assert!(csv.contains("\"with,comma\""));
    }

    #[test]
    fn suites_run_end_to_end_on_a_small_graph() {
        let graph = Arc::new(
            tcim_datasets::SyntheticConfig {
                num_nodes: 80,
                ..tcim_datasets::SyntheticConfig::default()
            }
            .with_edge_probability(0.2)
            .build()
            .unwrap(),
        );
        let oracle = build_oracle(Arc::clone(&graph), Deadline::finite(5), 32, 1);
        let reports = run_budget_suite(&oracle, 3, None, &[ConcaveWrapper::Log]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "P1");
        assert!(reports[1].label.contains("P4"));
        let (total, groups, disparity) = budget_summary(&reports[0]);
        assert!(total > 0.0 && !groups.is_empty() && disparity >= 0.0);
        let pair = most_disparate_pair(&reports[0]);
        assert!(pair.0 < 2 && pair.1 < 2);

        let (unfair, fair) = run_cover_suite(&oracle, 0.1, Some(40), None);
        assert!(unfair.seed_count() >= 1);
        assert!(fair.seed_count() >= unfair.seed_count());
        assert_eq!(deadline_label(Deadline::finite(5)), "5");
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt4(0.12345), "0.1235");
    }
}

//! `lock-order`: nested lock-acquisition discipline for the serving tier.
//!
//! `crates/service` owns the workspace's only long-lived lock structures —
//! the cache's sharded mutexes, the per-key build-lock registry, the
//! admission semaphore and the connection gauge. A deadlock needs two
//! threads acquiring two of those in opposite orders, so the rule extracts
//! every `.lock()` acquisition site, tracks which guards are still held
//! when the next acquisition happens (guard bindings live to their block
//! end or an explicit `drop(guard)`; un-bound temporaries die with their
//! statement), unions the per-function acquisition edges into one graph,
//! and fails on any cycle.
//!
//! The analysis is interprocedural: beyond the nesting that is *textually
//! visible* inside one function body (closures included — they are part of
//! the enclosing body's token stream), it records every call made while a
//! guard is held, resolves the callee through the workspace call graph
//! (closure-parameter calls included — over-approximating an unknown
//! closure by the same-named function is conservative for cycle
//! detection), and unions the callee's transitive acquisition summary
//! (bounded depth) into the graph as `held -> callee-acquired` edges. The
//! oracle → worlds → graph build-lock convention from `cache.rs` is
//! thereby machine-checked across function boundaries, not just inside
//! one body.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Workspace;
use crate::items::{CallSite, FnItem};
use crate::lexer::TokenKind;
use crate::rules::RuleCtx;
use crate::{Policy, LOCK_ORDER};

/// Transitive acquisition summaries stop unioning past this call depth.
const SUMMARY_DEPTH: usize = 8;

/// Receiver-name aliases that denote the same lock class (e.g. the shard
/// mutex is reached both as `shard.lock()` and `self.shard_for(k).lock()`).
const CLASS_ALIASES: &[(&str, &str)] = &[("shard_for", "shard")];

/// One nested-acquisition edge: while `from` was held, `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The lock class already held.
    pub from: String,
    /// The lock class acquired under it.
    pub to: String,
    /// `file:line` of the inner acquisition (for interprocedural edges:
    /// the call site the acquisition is reached through).
    pub site: String,
    /// For interprocedural edges, the callee whose summary contributed
    /// the acquisition; `None` for textually-nested edges.
    pub via: Option<String>,
}

/// The union of every function's acquisition edges across the lock scope.
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: BTreeSet<LockEdge>,
}

impl LockGraph {
    /// All edges, deduplicated and ordered.
    pub fn edges(&self) -> impl Iterator<Item = &LockEdge> {
        self.edges.iter()
    }

    /// Whether any edges were recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    pub(crate) fn add(&mut self, from: String, to: String, site: String) {
        self.edges.insert(LockEdge { from, to, site, via: None });
    }

    pub(crate) fn add_via(&mut self, from: String, to: String, site: String, via: String) {
        self.edges.insert(LockEdge { from, to, site, via: Some(via) });
    }

    /// Unions another graph's edges into this one.
    pub(crate) fn merge(&mut self, other: LockGraph) {
        self.edges.extend(other.edges);
    }

    /// Finds one acquisition cycle if the graph has any, as the list of
    /// edges along the cycle.
    pub fn find_cycle(&self) -> Option<Vec<&LockEdge>> {
        let mut adjacency: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for edge in &self.edges {
            adjacency.entry(edge.from.as_str()).or_default().push(edge);
        }
        // DFS with an explicit stack of (node, path-of-edges).
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        for &start in adjacency.keys().collect::<Vec<_>>().iter() {
            if visited.contains(start) {
                continue;
            }
            let mut path: Vec<&LockEdge> = Vec::new();
            if let Some(cycle) = Self::dfs(start, &adjacency, &mut visited, &mut path) {
                return Some(cycle);
            }
        }
        None
    }

    fn dfs<'a>(
        node: &'a str,
        adjacency: &BTreeMap<&'a str, Vec<&'a LockEdge>>,
        visited: &mut BTreeSet<&'a str>,
        path: &mut Vec<&'a LockEdge>,
    ) -> Option<Vec<&'a LockEdge>> {
        if let Some(pos) = path.iter().position(|e| e.from == node) {
            return Some(path[pos..].to_vec());
        }
        if !visited.insert(node) {
            return None;
        }
        for edge in adjacency.get(node).into_iter().flatten() {
            path.push(edge);
            if let Some(cycle) = Self::dfs(edge.to.as_str(), adjacency, visited, path) {
                return Some(cycle);
            }
            path.pop();
        }
        None
    }
}

/// A lock whose guard is still live at the current point of the scan.
struct Held {
    class: String,
    guard: Option<String>,
    depth: i32,
}

/// A call made while at least one guard was held — the raw material for
/// the interprocedural pass: once the whole workspace is pooled, the
/// callee is resolved and its transitive acquisition summary becomes
/// `held -> acquired` edges at this site.
#[derive(Debug, Clone)]
pub(crate) struct GuardedCall {
    /// Index of the calling function in this file's item list.
    pub caller: usize,
    /// The call site (callee name, qualifier, receiver, param-ness).
    pub call: CallSite,
    /// Lock classes held at the call, deduplicated.
    pub held: Vec<String>,
    /// `file:line` of the call.
    pub site: String,
}

/// Per-file lock facts beyond the textual edges.
#[derive(Debug, Clone, Default)]
pub(crate) struct LockFacts {
    /// Calls made under a held guard.
    pub guarded_calls: Vec<GuardedCall>,
    /// Direct (unsuppressed) lock-class acquisitions per item index.
    pub acquires: BTreeMap<usize, BTreeSet<String>>,
}

/// Extracts acquisition edges from every function body of this file into
/// `graph`, plus the guarded calls and per-function acquisition sets the
/// interprocedural pass consumes. Sites carrying a `lint:allow(lock-order)`
/// annotation record no edges and drop out of the summaries; the matching
/// annotation lines are marked used.
pub(crate) fn collect(
    ctx: &RuleCtx<'_>,
    items: &[FnItem],
    graph: &mut LockGraph,
    facts: &mut LockFacts,
    used: &mut BTreeSet<(u32, String)>,
) {
    for (idx, item) in items.iter().enumerate() {
        if item.is_test {
            continue;
        }
        scan_body(ctx, idx, item, graph, facts, used);
    }
}

fn scan_body(
    ctx: &RuleCtx<'_>,
    item_idx: usize,
    item: &FnItem,
    graph: &mut LockGraph,
    facts: &mut LockFacts,
    used: &mut BTreeSet<(u32, String)>,
) {
    let tokens = &ctx.model.tokens;
    let (start, end) = (item.body.start, item.body.end);
    let calls_by_token: BTreeMap<usize, &CallSite> =
        item.calls.iter().map(|c| (c.token, c)).collect();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        let tok = &tokens[i];
        if tok.is_comment() {
            i += 1;
            continue;
        }
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
        } else if tok.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(guard) = tokens.get(i + 2) {
                if guard.kind == TokenKind::Ident {
                    held.retain(|h| h.guard.as_deref() != Some(guard.text.as_str()));
                }
            }
        } else if tok.is_ident("lock")
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            let class = receiver_class(tokens, i - 1);
            match ctx.model.suppressing_line(LOCK_ORDER, tok.line) {
                Some(l) => {
                    used.insert((l, LOCK_ORDER.to_string()));
                }
                None => {
                    for h in &held {
                        graph.add(
                            h.class.clone(),
                            class.clone(),
                            format!("{}:{}", ctx.path, tok.line),
                        );
                    }
                    facts.acquires.entry(item_idx).or_default().insert(class.clone());
                }
            }
            if let Some(guard) = binding_guard(tokens, start, i) {
                held.push(Held { class, guard: Some(guard), depth });
            }
        } else if let Some(&call) = calls_by_token.get(&i) {
            // A call made under a held guard: the callee's acquisitions
            // nest under everything currently held.
            if !held.is_empty() && call.callee != "drop" && call.callee != "lock" {
                match ctx.model.suppressing_line(LOCK_ORDER, tok.line) {
                    Some(l) => {
                        used.insert((l, LOCK_ORDER.to_string()));
                    }
                    None => {
                        let mut classes: Vec<String> =
                            held.iter().map(|h| h.class.clone()).collect();
                        classes.sort();
                        classes.dedup();
                        facts.guarded_calls.push(GuardedCall {
                            caller: item_idx,
                            call: call.clone(),
                            held: classes,
                            site: format!("{}:{}", ctx.path, tok.line),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// The interprocedural pass, run once the whole workspace is pooled:
/// resolves every guarded call and unions the callee's bounded-depth
/// transitive acquisition summary into `graph` as `held -> acquired`
/// edges. Both resolution and summaries stay inside the lock scope —
/// a call that leaves `crates/service` cannot come back to its locks.
pub(crate) fn interprocedural_edges(
    ws: &Workspace,
    policy: &Policy,
    guarded: &[(usize, GuardedCall)],
    acquires: &BTreeMap<usize, BTreeSet<String>>,
    graph: &mut LockGraph,
) {
    let mut memo: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (caller, gc) in guarded {
        for cand in ws.resolve(*caller, &gc.call, true) {
            if !policy.in_lock_scope(&ws.get(cand).path) {
                continue;
            }
            let mut visiting = BTreeSet::new();
            let classes =
                transitive(ws, policy, acquires, &mut memo, &mut visiting, cand, SUMMARY_DEPTH);
            for to in &classes {
                for from in &gc.held {
                    graph.add_via(
                        from.clone(),
                        to.clone(),
                        gc.site.clone(),
                        gc.call.callee.clone(),
                    );
                }
            }
        }
    }
}

/// Lock classes function `idx` may acquire, directly or through calls, up
/// to `depth` levels deep. Memoized; cycles in the call graph contribute
/// their direct sets only.
fn transitive(
    ws: &Workspace,
    policy: &Policy,
    acquires: &BTreeMap<usize, BTreeSet<String>>,
    memo: &mut BTreeMap<usize, BTreeSet<String>>,
    visiting: &mut BTreeSet<usize>,
    idx: usize,
    depth: usize,
) -> BTreeSet<String> {
    if let Some(done) = memo.get(&idx) {
        return done.clone();
    }
    let mut classes = acquires.get(&idx).cloned().unwrap_or_default();
    if depth == 0 || !visiting.insert(idx) {
        return classes;
    }
    let f = ws.get(idx);
    for call in &f.item.calls {
        for cand in ws.resolve(idx, call, true) {
            if cand == idx || !policy.in_lock_scope(&ws.get(cand).path) {
                continue;
            }
            classes.extend(transitive(ws, policy, acquires, memo, visiting, cand, depth - 1));
        }
    }
    visiting.remove(&idx);
    memo.insert(idx, classes.clone());
    classes
}

/// The lock class of an acquisition: the last meaningful identifier of the
/// receiver expression before `.lock()` (field name, variable name, or the
/// method producing the lock), normalized through [`CLASS_ALIASES`].
fn receiver_class(tokens: &[crate::lexer::Token], dot: usize) -> String {
    let mut j = dot as i64 - 1;
    // Skip a trailing call's argument list: `shard_for(key).lock()`.
    if j >= 0 && tokens[j as usize].is_punct(')') {
        let mut depth = 0i64;
        while j >= 0 {
            if tokens[j as usize].is_punct(')') {
                depth += 1;
            } else if tokens[j as usize].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    j -= 1;
                    break;
                }
            }
            j -= 1;
        }
    }
    let name = if j >= 0 && tokens[j as usize].kind == TokenKind::Ident {
        tokens[j as usize].text.clone()
    } else {
        "<expr>".to_string()
    };
    CLASS_ALIASES
        .iter()
        .find(|(from, _)| *from == name)
        .map(|(_, to)| (*to).to_string())
        .unwrap_or(name)
}

/// If the statement containing the acquisition at token `site` is a
/// `let [mut] name = …` binding, returns `name` — the guard lives past the
/// statement. Unbound acquisitions are temporaries that die with their
/// statement and are never treated as held.
fn binding_guard(tokens: &[crate::lexer::Token], body_start: usize, site: usize) -> Option<String> {
    // Walk back to the statement start.
    let mut j = site;
    while j > body_start {
        let tok = &tokens[j - 1];
        if tok.is_punct(';') || tok.is_punct('{') || tok.is_punct('}') {
            break;
        }
        j -= 1;
    }
    let mut k = j;
    while tokens.get(k).is_some_and(|t| t.is_comment()) {
        k += 1;
    }
    if !tokens.get(k).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut name = k + 1;
    if tokens.get(name).is_some_and(|t| t.is_ident("mut")) {
        name += 1;
    }
    let tok = tokens.get(name)?;
    (tok.kind == TokenKind::Ident).then(|| tok.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection_finds_opposite_orders() {
        let mut graph = LockGraph::default();
        graph.add("a".into(), "b".into(), "f.rs:1".into());
        graph.add("b".into(), "c".into(), "f.rs:2".into());
        assert!(graph.find_cycle().is_none());
        graph.add("c".into(), "a".into(), "f.rs:3".into());
        let cycle = graph.find_cycle().expect("cycle");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn self_edges_are_cycles() {
        let mut graph = LockGraph::default();
        graph.add("a".into(), "a".into(), "f.rs:9".into());
        assert_eq!(graph.find_cycle().expect("self cycle").len(), 1);
    }
}

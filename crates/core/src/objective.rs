//! Adapters turning a group-aware influence cursor into the scalar
//! incremental objectives consumed by the submodular solvers.
//!
//! All four problem variants optimize *some* scalar function of the per-group
//! influence vector `(f_τ(S; V_1), …, f_τ(S; V_k))`:
//!
//! | Problem | Scalarization |
//! |---------|---------------|
//! | P1 (TCIM-BUDGET) | `Σ_i f_i` |
//! | P4 (FAIRTCIM-BUDGET) | `Σ_i λ_i · H(f_i)` |
//! | P2 (TCIM-COVER) | `f / |V|`, covered to quota `Q` |
//! | P6 (FAIRTCIM-COVER) | `Σ_i min(f_i / |V_i|, Q)`, covered to `k·Q` |
//!
//! Each scalarization is a concave, coordinate-wise non-decreasing function of
//! the influence vector, so composed with the monotone submodular group
//! influences the resulting set function stays monotone submodular and the
//! greedy guarantees apply.

use tcim_diffusion::{GroupInfluence, InfluenceCursor};
use tcim_graph::NodeId;
use tcim_submodular::IncrementalObjective;

use crate::concave::ConcaveWrapper;

/// How a per-group influence vector is collapsed into the scalar objective.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalarization {
    /// Total influence `Σ_i f_i` (problems P1 and, normalized, P2).
    Total,
    /// Fraction of the whole population influenced, `Σ_i f_i / |V|`; the
    /// quantity the TCIM-COVER quota constrains.
    NormalizedTotal {
        /// Total population size `|V|`.
        population: usize,
    },
    /// The FAIRTCIM-BUDGET surrogate `Σ_i λ_i · H(f_i)`.
    Concave {
        /// The concave wrapper `H`.
        wrapper: ConcaveWrapper,
        /// Optional per-group weights `λ_i` (all 1 when `None`).
        weights: Option<Vec<f64>>,
    },
    /// The FAIRTCIM-COVER potential `Σ_i min(f_i / |V_i|, Q)`.
    TruncatedQuota {
        /// The per-group quota `Q`.
        quota: f64,
        /// Group sizes `|V_i|`.
        group_sizes: Vec<usize>,
    },
}

impl Scalarization {
    /// Applies the scalarization to a per-group influence vector.
    pub fn value(&self, influence: &[f64]) -> f64 {
        match self {
            Scalarization::Total => influence.iter().sum(),
            Scalarization::NormalizedTotal { population } => {
                if *population == 0 {
                    0.0
                } else {
                    influence.iter().sum::<f64>() / *population as f64
                }
            }
            Scalarization::Concave { wrapper, weights } => influence
                .iter()
                .enumerate()
                .map(|(i, &f)| {
                    let w = weights.as_ref().and_then(|w| w.get(i)).copied().unwrap_or(1.0);
                    w * wrapper.apply(f)
                })
                .sum(),
            Scalarization::TruncatedQuota { quota, group_sizes } => influence
                .iter()
                .zip(group_sizes)
                .map(|(&f, &size)| if size == 0 { 0.0 } else { (f / size as f64).min(*quota) })
                .sum(),
        }
    }

    /// Value after adding a per-group gain vector to the current influence.
    pub fn value_with_gain(&self, current: &[f64], gain: &[f64]) -> f64 {
        let combined: Vec<f64> = current.iter().zip(gain).map(|(c, g)| c + g).collect();
        self.value(&combined)
    }
}

/// An incremental scalar objective over seed nodes, driven by an
/// [`InfluenceCursor`]. Ground-set items are node indices
/// (`NodeId::index()`).
pub struct InfluenceObjective<'a> {
    cursor: Box<dyn InfluenceCursor + 'a>,
    scalarization: Scalarization,
    cached_value: f64,
}

impl<'a> InfluenceObjective<'a> {
    /// Wraps `cursor` with the given scalarization, starting from the empty
    /// seed set.
    pub fn new(cursor: Box<dyn InfluenceCursor + 'a>, scalarization: Scalarization) -> Self {
        let cached_value = scalarization.value(cursor.current().values());
        InfluenceObjective { cursor, scalarization, cached_value }
    }

    /// Influence of the currently committed seed set.
    pub fn influence(&self) -> &GroupInfluence {
        self.cursor.current()
    }

    /// Seeds committed so far.
    pub fn seeds(&self) -> Vec<NodeId> {
        self.cursor.seeds().to_vec()
    }

    /// The scalarization in use.
    pub fn scalarization(&self) -> &Scalarization {
        &self.scalarization
    }
}

impl IncrementalObjective for InfluenceObjective<'_> {
    fn current_value(&self) -> f64 {
        self.cached_value
    }

    fn gain(&mut self, item: usize) -> f64 {
        let candidate = NodeId::from_index(item);
        let gain = self.cursor.gain(candidate);
        let new_value =
            self.scalarization.value_with_gain(self.cursor.current().values(), gain.values());
        (new_value - self.cached_value).max(0.0)
    }

    fn insert(&mut self, item: usize) {
        self.cursor.add_seed(NodeId::from_index(item));
        self.cached_value = self.scalarization.value(self.cursor.current().values());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tcim_diffusion::{Deadline, InfluenceOracle, WorldEstimator, WorldsConfig};
    use tcim_graph::{GraphBuilder, GroupId};

    /// Deterministic graph: hub 0 (group 0) -> 3 leaves (group 0) and a
    /// two-hop chain into group 1, all probability 1.
    fn oracle() -> WorldEstimator {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(GroupId(0));
        let leaves = b.add_nodes(3, GroupId(0));
        let bridge = b.add_node(GroupId(1));
        let far = b.add_node(GroupId(1));
        for &leaf in &leaves {
            b.add_edge(hub, leaf, 1.0).unwrap();
        }
        b.add_edge(hub, bridge, 1.0).unwrap();
        b.add_edge(bridge, far, 1.0).unwrap();
        let g = Arc::new(b.build().unwrap());
        WorldEstimator::new(
            g,
            Deadline::unbounded(),
            &WorldsConfig { num_worlds: 4, seed: 0, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn scalarizations_compute_expected_values() {
        let influence = vec![4.0, 1.0];
        assert_eq!(Scalarization::Total.value(&influence), 5.0);
        assert_eq!(Scalarization::NormalizedTotal { population: 10 }.value(&influence), 0.5);
        let concave = Scalarization::Concave { wrapper: ConcaveWrapper::Sqrt, weights: None };
        assert!((concave.value(&influence) - 3.0).abs() < 1e-12);
        let weighted = Scalarization::Concave {
            wrapper: ConcaveWrapper::Identity,
            weights: Some(vec![1.0, 10.0]),
        };
        assert!((weighted.value(&influence) - 14.0).abs() < 1e-12);
        let truncated = Scalarization::TruncatedQuota { quota: 0.3, group_sizes: vec![10, 10] };
        assert!((truncated.value(&influence) - (0.3 + 0.1)).abs() < 1e-12);
        // Empty group contributes zero rather than NaN.
        let truncated = Scalarization::TruncatedQuota { quota: 0.3, group_sizes: vec![10, 0] };
        assert!((truncated.value(&influence) - 0.3).abs() < 1e-12);
        assert_eq!(Scalarization::NormalizedTotal { population: 0 }.value(&influence), 0.0);
    }

    #[test]
    fn value_with_gain_matches_direct_evaluation() {
        let s = Scalarization::Concave { wrapper: ConcaveWrapper::Log, weights: None };
        let direct = s.value(&[3.0, 2.0]);
        let incremental = s.value_with_gain(&[1.0, 2.0], &[2.0, 0.0]);
        assert!((direct - incremental).abs() < 1e-12);
    }

    #[test]
    fn objective_tracks_cursor_state() {
        let est = oracle();
        let mut obj = InfluenceObjective::new(est.cursor(), Scalarization::Total);
        assert_eq!(obj.current_value(), 0.0);
        let gain_hub = obj.gain(0);
        assert!((gain_hub - 6.0).abs() < 1e-12);
        obj.insert(0);
        assert_eq!(obj.seeds(), vec![NodeId(0)]);
        assert!((obj.current_value() - 6.0).abs() < 1e-12);
        assert!((obj.influence().total() - 6.0).abs() < 1e-12);
        // Already-covered leaf gains nothing.
        assert_eq!(obj.gain(1), 0.0);
    }

    #[test]
    fn concave_objective_prefers_the_underinfluenced_group() {
        // After seeding the hub, group 0 has 4 influenced, group 1 has 2.
        // Under identity both a fresh group-0 node and a fresh group-1 node
        // would gain equally (zero here since all covered); use a tighter
        // deadline so group 1 is NOT covered and compare gains.
        let est = oracle().with_deadline(Deadline::finite(1));
        let mut total = InfluenceObjective::new(est.cursor(), Scalarization::Total);
        let mut fair = InfluenceObjective::new(
            est.cursor(),
            Scalarization::Concave { wrapper: ConcaveWrapper::Log, weights: None },
        );
        total.insert(0);
        fair.insert(0);
        // Candidate 5 (group 1, uncovered within the deadline) gains; the
        // already-covered majority candidate 1 does not. Under the fair
        // objective the minority candidate is strictly preferred, and the
        // unfair objective still sees its raw +1 gain.
        assert!((total.gain(5) - 1.0).abs() < 1e-12);
        let fair_gain_minority = fair.gain(5);
        let fair_gain_majority = fair.gain(1);
        assert!(fair_gain_minority > fair_gain_majority);
        assert!(fair.scalarization() != total.scalarization());
    }
}

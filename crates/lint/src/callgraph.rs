//! The workspace call graph: every file's [`crate::items::FnItem`]s pooled
//! into one index, with call sites resolved to candidate callees by
//! name, path and receiver-type heuristics.
//!
//! Resolution is deliberately tiered and conservative. A call resolves
//! through the first tier that produces candidates:
//!
//! 1. **Qualified** (`Foo::f(…)`): methods of an `impl Foo`, or functions
//!    in a module/file named `foo`; `Self::f` binds to the caller's owner.
//! 2. **Receiver-typed** (`x.f(…)`): if exactly one impl type's
//!    snake_cased name matches the receiver identifier (`cache` →
//!    `OracleCache`), its method wins; `self.f(…)` binds to the caller's
//!    owner.
//! 3. **Scoped name** (bare `f(…)` or unresolved method): same file, then
//!    same crate, then workspace-wide — first non-empty tier wins.
//!
//! A tier with more than [`MAX_CANDIDATES`] hits is treated as *unresolved*
//! (likely a std/vendor name like `get` or `len`): the analyses built on
//! top would rather miss an edge than chase every `len` in the workspace.
//! Test functions never enter the index — nothing in library code calls
//! into test scope.

use std::collections::BTreeMap;

use crate::items::{CallSite, FnItem};

/// Above this many same-tier candidates a call counts as unresolved.
pub const MAX_CANDIDATES: usize = 3;

/// One function in the workspace index.
#[derive(Debug)]
pub struct FnRef {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate key (`crates/<name>` or `root` for the facade).
    pub crate_key: String,
    /// File stem (`cache` for `crates/service/src/cache.rs`).
    pub file_stem: String,
    /// The parsed item.
    pub item: FnItem,
}

/// The pooled index over every scanned file's functions.
#[derive(Debug, Default)]
pub struct Workspace {
    fns: Vec<FnRef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Crate key of a workspace-relative path.
pub fn crate_key(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return format!("crates/{name}");
        }
    }
    "root".to_string()
}

/// `CamelCase` → `camel_case`, for receiver-name ↔ type-name matching.
pub fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

impl Workspace {
    /// Adds every non-test function of one file to the index. Returns the
    /// global index of each input item in order (`None` for test items,
    /// which never enter the index).
    pub fn add_file(&mut self, path: &str, items: Vec<FnItem>) -> Vec<Option<usize>> {
        let key = crate_key(path);
        let stem =
            path.rsplit('/').next().and_then(|f| f.strip_suffix(".rs")).unwrap_or("").to_string();
        let mut global = Vec::with_capacity(items.len());
        for item in items {
            if item.is_test {
                global.push(None);
                continue;
            }
            let idx = self.fns.len();
            global.push(Some(idx));
            self.by_name.entry(item.name.clone()).or_default().push(idx);
            self.fns.push(FnRef {
                path: path.to_string(),
                crate_key: key.clone(),
                file_stem: stem.clone(),
                item,
            });
        }
        global
    }

    /// All indexed functions, in insertion (path-sorted, then source) order.
    pub fn fns(&self) -> &[FnRef] {
        &self.fns
    }

    /// The function at index `idx`.
    pub fn get(&self, idx: usize) -> &FnRef {
        &self.fns[idx]
    }

    /// Candidate callees for `call` made from `caller`. Empty means
    /// unresolved: an external name, or too ambiguous to chase.
    /// `resolve_params` opts in to resolving calls through closure-typed
    /// parameters by name (the lock analysis wants the over-approximation;
    /// panic-reachability does not).
    pub fn resolve(&self, caller: usize, call: &CallSite, resolve_params: bool) -> Vec<usize> {
        if call.is_param && !resolve_params {
            return Vec::new();
        }
        let Some(named) = self.by_name.get(&call.callee) else {
            return Vec::new();
        };
        let from = &self.fns[caller];

        // Tier 1: qualified path `Q::f(…)`.
        if let Some(q) = &call.qualifier {
            let owner_key = if q == "Self" { from.item.owner.clone() } else { Some(q.clone()) };
            if let Some(owner) = &owner_key {
                let of_owner: Vec<usize> = named
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].item.owner.as_deref() == Some(owner.as_str()))
                    .collect();
                if let Some(hit) = capped(of_owner) {
                    return hit;
                }
            }
            if q != "Self" {
                let snake = snake_case(q);
                let in_module: Vec<usize> = named
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let f = &self.fns[i];
                        f.file_stem == snake
                            || f.item.module_path.last().is_some_and(|m| *m == snake)
                    })
                    .collect();
                if let Some(hit) = capped(in_module) {
                    return hit;
                }
            }
            // A qualifier that matches nothing in the workspace is an
            // external type (`Vec::new`, `String::from`): unresolved.
            return Vec::new();
        }

        // Tier 2: receiver-typed method call.
        if let Some(recv) = &call.receiver {
            if recv == "self" {
                if let Some(owner) = &from.item.owner {
                    let own: Vec<usize> = named
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].item.owner.as_deref() == Some(owner.as_str()))
                        .collect();
                    if let Some(hit) = capped(own) {
                        return hit;
                    }
                }
            } else if recv != "<expr>" {
                let mut owners: Vec<&str> = named
                    .iter()
                    .filter_map(|&i| self.fns[i].item.owner.as_deref())
                    .filter(|owner| {
                        let snake = snake_case(owner);
                        snake == *recv || snake.ends_with(&format!("_{recv}"))
                    })
                    .collect();
                owners.dedup();
                if owners.len() == 1 {
                    let owner = owners[0].to_string();
                    let of_owner: Vec<usize> = named
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].item.owner.as_deref() == Some(owner.as_str()))
                        .collect();
                    if let Some(hit) = capped(of_owner) {
                        return hit;
                    }
                }
            }
        }

        // Tier 3: same file → same crate → workspace.
        let same_file: Vec<usize> =
            named.iter().copied().filter(|&i| self.fns[i].path == from.path).collect();
        if let Some(hit) = capped(same_file) {
            return hit;
        }
        let same_crate: Vec<usize> =
            named.iter().copied().filter(|&i| self.fns[i].crate_key == from.crate_key).collect();
        if let Some(hit) = capped(same_crate) {
            return hit;
        }
        capped(named.clone()).unwrap_or_default()
    }
}

/// A non-empty candidate set under the ambiguity cap, or `None` to try the
/// next tier (empty) / give up (oversized).
fn capped(candidates: Vec<usize>) -> Option<Vec<usize>> {
    if candidates.is_empty() || candidates.len() > MAX_CANDIDATES {
        return None;
    }
    Some(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::model::FileModel;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (path, src) in files {
            ws.add_file(path, parse_items(&FileModel::parse(src, false)));
        }
        ws
    }

    fn idx(ws: &Workspace, name: &str) -> usize {
        ws.fns().iter().position(|f| f.item.name == name).expect("fn in index")
    }

    fn resolved_names(ws: &Workspace, caller: &str, callee: &str) -> Vec<String> {
        let c = idx(ws, caller);
        let call = ws.get(c).item.calls.iter().find(|s| s.callee == callee).expect("call site");
        ws.resolve(c, call, false).into_iter().map(|i| ws.get(i).path.clone()).collect()
    }

    #[test]
    fn snake_case_matches_receivers_to_types() {
        assert_eq!(snake_case("OracleCache"), "oracle_cache");
        assert_eq!(snake_case("BitSet"), "bit_set");
        assert_eq!(snake_case("shard"), "shard");
    }

    #[test]
    fn same_file_beats_same_crate_beats_workspace() {
        let ws = ws(&[
            ("crates/a/src/one.rs", "fn caller() { helper(); } fn helper() {}"),
            ("crates/a/src/two.rs", "fn helper() {}"),
            ("crates/b/src/three.rs", "fn helper() {}"),
        ]);
        assert_eq!(resolved_names(&ws, "caller", "helper"), vec!["crates/a/src/one.rs"]);
    }

    #[test]
    fn qualified_calls_bind_to_impl_owner_or_module_file() {
        let ws = ws(&[
            ("crates/a/src/caller.rs", "fn go() { Cache::build(); store::persist(); Vec::new(); }"),
            ("crates/a/src/cache.rs", "struct Cache; impl Cache { fn build() {} }"),
            ("crates/a/src/store.rs", "pub fn persist() {}"),
        ]);
        assert_eq!(resolved_names(&ws, "go", "build"), vec!["crates/a/src/cache.rs"]);
        assert_eq!(resolved_names(&ws, "go", "persist"), vec!["crates/a/src/store.rs"]);
        assert!(
            resolved_names(&ws, "go", "new").is_empty(),
            "external `Vec::new` stays unresolved"
        );
    }

    #[test]
    fn self_and_receiver_type_heuristics() {
        let ws = ws(&[(
            "crates/a/src/cache.rs",
            "struct OracleCache;\n\
             impl OracleCache {\n\
               fn outer(&self, cache: &OracleCache) { self.inner(); cache.inner(); }\n\
               fn inner(&self) {}\n\
             }",
        )]);
        let outer = idx(&ws, "outer");
        for call in &ws.get(outer).item.calls {
            let hits = ws.resolve(outer, call, false);
            assert_eq!(hits.len(), 1, "both self.inner() and cache.inner() resolve");
            assert_eq!(ws.get(hits[0]).item.name, "inner");
        }
    }

    #[test]
    fn ambiguous_names_stay_unresolved() {
        let files: Vec<(String, String)> = (0..5)
            .map(|i| (format!("crates/c{i}/src/lib.rs"), "pub fn get() {}".to_string()))
            .collect();
        let mut all: Vec<(&str, &str)> =
            files.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
        let caller = ("crates/z/src/lib.rs", "fn go(v: u32) { get(); }");
        all.push(caller);
        let ws = ws(&all);
        assert!(resolved_names(&ws, "go", "get").is_empty(), "5 candidates > cap");
    }

    #[test]
    fn param_calls_resolve_only_on_request() {
        let ws = ws(&[("crates/a/src/lib.rs", "fn run(build: u32) { build(); } fn build() {}")]);
        let run = idx(&ws, "run");
        let call = &ws.get(run).item.calls[0];
        assert!(call.is_param);
        assert!(ws.resolve(run, call, false).is_empty());
        assert_eq!(ws.resolve(run, call, true).len(), 1);
    }

    #[test]
    fn test_fns_never_enter_the_index() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "#[cfg(test)] mod tests { fn helper() {} }\nfn lib() {}",
        )]);
        assert_eq!(ws.fns().len(), 1);
        assert_eq!(ws.fns()[0].item.name, "lib");
    }
}

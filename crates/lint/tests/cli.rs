//! CLI contract tests: exit codes, `file:line` reporting, suppression
//! syntax through the binary, and the workspace-clean integration check.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_tcim_lint")
}

/// A unique scratch workspace for one test, removed on drop.
struct Tree {
    root: PathBuf,
}

impl Tree {
    fn new(name: &str) -> Tree {
        let root = std::env::temp_dir().join(format!("tcim-lint-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create scratch root");
        let tree = Tree { root };
        // Satisfy the workspace unsafe-count pin so tests exercise the rule
        // under test, not the pin.
        tree.write(
            "crates/service/src/server.rs",
            "// SAFETY: scratch-tree stand-in for the pinned signal-FFI block.\n\
             pub unsafe fn pinned() {}\n",
        );
        tree
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel paths have parents")).expect("mkdir");
        fs::write(path, contents).expect("write fixture file");
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(bin())
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("spawn tcim_lint")
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("exit code")
}

#[test]
fn clean_tree_exits_zero() {
    let tree = Tree::new("clean");
    tree.write("crates/x/src/lib.rs", "pub fn id(v: u32) -> u32 { v }\n");
    let out = tree.run(&["--workspace"]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn violations_exit_one_and_name_file_and_line() {
    let tree = Tree::new("violation");
    tree.write("crates/x/src/lib.rs", "pub fn boom(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n");
    let out = tree.run(&["--workspace"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(text.contains("crates/x/src/lib.rs:2"), "must name file:line, got: {text}");
    assert!(text.contains("[panic]"), "must name the rule, got: {text}");
}

#[test]
fn single_file_mode_checks_only_the_named_file() {
    let tree = Tree::new("single");
    tree.write("crates/x/src/lib.rs", "pub fn boom() { panic!(\"x\") }\n");
    tree.write("crates/y/src/lib.rs", "pub fn also() { panic!(\"y\") }\n");
    let out = tree.run(&["crates/x/src/lib.rs"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(text.contains("crates/x/src/lib.rs:1"));
    assert!(!text.contains("crates/y"), "unrequested file leaked into: {text}");
}

#[test]
fn suppression_with_reason_silences_the_site() {
    let tree = Tree::new("suppressed");
    tree.write(
        "crates/x/src/lib.rs",
        "pub fn ok(v: Option<u32>) -> u32 {\n    \
         // lint:allow(panic): the caller builds the Option as Some\n    \
         v.expect(\"always Some\")\n}\n",
    );
    let out = tree.run(&["--workspace"]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
}

#[test]
fn suppression_without_reason_is_rejected() {
    let tree = Tree::new("no-reason");
    tree.write(
        "crates/x/src/lib.rs",
        "pub fn bad(v: Option<u32>) -> u32 {\n    \
         // lint:allow(panic)\n    \
         v.expect(\"always Some\")\n}\n",
    );
    let out = tree.run(&["--workspace"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(text.contains("[suppression]"), "must flag the annotation, got: {text}");
    assert!(text.contains("[panic]"), "a malformed annotation must not suppress, got: {text}");
}

#[test]
fn suppression_with_unknown_rule_is_rejected() {
    let tree = Tree::new("bad-rule");
    tree.write(
        "crates/x/src/lib.rs",
        "pub fn f(v: u32) -> u32 {\n    \
         // lint:allow(panics): typo in the rule name\n    \
         v\n}\n",
    );
    let out = tree.run(&["--workspace"]);
    assert_eq!(code(&out), 1);
    assert!(stdout(&out).contains("unknown rule 'panics'"), "got: {}", stdout(&out));
}

#[test]
fn list_rules_names_every_family() {
    let out = Command::new(bin()).arg("--list-rules").output().expect("spawn");
    assert_eq!(code(&out), 0);
    let text = stdout(&out);
    for rule in tcim_lint::KNOWN_RULES {
        assert!(text.lines().any(|l| l == *rule), "missing rule {rule} in: {text}");
    }
}

#[test]
fn no_input_is_a_usage_error() {
    let out = Command::new(bin()).output().expect("spawn");
    assert_eq!(code(&out), 2);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(bin()).arg("--frobnicate").output().expect("spawn");
    assert_eq!(code(&out), 2);
}

#[test]
fn missing_file_is_an_io_error() {
    let tree = Tree::new("missing");
    let out = tree.run(&["crates/none/src/lib.rs"]);
    assert_eq!(code(&out), 2);
}

/// A scratch tree with one violation, for output-format tests.
fn violating_tree(name: &str) -> Tree {
    let tree = Tree::new(name);
    tree.write("crates/x/src/lib.rs", "pub fn boom(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n");
    tree
}

#[test]
fn emit_json_is_machine_readable() {
    let tree = violating_tree("emit-json");
    let out = tree.run(&["--workspace", "--emit", "json"]);
    assert_eq!(code(&out), 1);
    let doc = tcim_service::Json::parse(&stdout(&out)).expect("stdout parses as JSON");
    assert_eq!(doc.get("version").and_then(tcim_service::Json::as_u64), Some(1));
    assert!(doc.get("checked").and_then(tcim_service::Json::as_u64).is_some_and(|n| n >= 2));
    let findings = doc.get("findings").and_then(tcim_service::Json::as_arr).expect("findings");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].get("rule").and_then(tcim_service::Json::as_str), Some("panic"));
    assert_eq!(
        findings[0].get("path").and_then(tcim_service::Json::as_str),
        Some("crates/x/src/lib.rs")
    );
    assert_eq!(findings[0].get("line").and_then(tcim_service::Json::as_u64), Some(2));
    let stats = doc.get("stats").and_then(tcim_service::Json::as_arr).expect("stats");
    assert_eq!(stats.len(), tcim_lint::KNOWN_RULES.len(), "one stats row per rule");
}

#[test]
fn emit_github_writes_error_annotations() {
    let tree = violating_tree("emit-github");
    let out = tree.run(&["--workspace", "--emit", "github"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(
        text.starts_with("::error file=crates/x/src/lib.rs,line=2,title=tcim-lint panic::"),
        "got: {text}"
    );
}

#[test]
fn emit_unknown_mode_is_a_usage_error() {
    let tree = Tree::new("emit-bad");
    let out = tree.run(&["--workspace", "--emit", "yaml"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn stats_table_lands_on_stderr() {
    let tree = violating_tree("stats");
    let out = tree.run(&["--workspace", "--stats"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("findings  suppressions-used"), "stats header on stderr, got: {err}");
    assert!(err.contains("panic"), "per-rule rows, got: {err}");
}

#[test]
fn output_is_byte_identical_across_thread_counts() {
    let tree = Tree::new("threads");
    // Violations across several files so the parallel scan has real work
    // whose merge order could drift if absorption were racy.
    for i in 0..6 {
        tree.write(
            &format!("crates/x/src/m{i}.rs"),
            "pub fn boom(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        );
    }
    let one = tree.run(&["--workspace", "--emit", "json", "--threads", "1"]);
    let eight = tree.run(&["--workspace", "--emit", "json", "--threads", "8"]);
    assert_eq!(code(&one), 1);
    assert_eq!(code(&eight), 1);
    assert_eq!(one.stdout, eight.stdout, "stdout must not depend on thread count");
}

#[test]
fn unused_suppression_is_flagged_through_the_binary() {
    let tree = Tree::new("unused-sup");
    tree.write(
        "crates/x/src/lib.rs",
        "// lint:allow(hash-iter): left over from deleted code\npub fn id(v: u32) -> u32 { v }\n",
    );
    let out = tree.run(&["--workspace"]);
    assert_eq!(code(&out), 1);
    let text = stdout(&out);
    assert!(text.contains("[unused-suppression]"), "got: {text}");
    assert!(text.contains("crates/x/src/lib.rs:1"), "got: {text}");
}

#[test]
fn the_real_workspace_is_clean() {
    // The zero-violation baseline is the PR's contract: the tool must exit
    // 0 on the tree it ships in. CARGO_MANIFEST_DIR = crates/lint.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let out = Command::new(bin())
        .arg("--root")
        .arg(root)
        .arg("--workspace")
        .output()
        .expect("spawn tcim_lint");
    assert_eq!(
        code(&out),
        0,
        "workspace must be lint-clean.\nstdout:\n{}\nstderr:\n{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
}

//! Theorem 1 / Theorem 2 empirical verification (not a figure in the paper,
//! but the guarantees it quotes alongside the experiments).
//!
//! * Theorem 1: on a small synthetic instance and the illustrative graph,
//!   compute the exhaustive optimum of P1, solve P4 greedily and check
//!   `f_τ(Ŝ) ≥ (1 − 1/e) · H(f_τ(S*))`.
//! * Theorem 2: solve FAIRTCIM-COVER greedily and compare its size against
//!   `ln(1 + |V|) · Σ_i |S_i|`, where the `|S_i|` are per-group greedy cover
//!   sizes (certified over-estimates of the optimal `|S*_i|`, so the reported
//!   bound is conservative in the right direction).

use std::sync::Arc;

use tcim_core::theory::{theorem1_check, theorem2_check};
use tcim_core::{
    solve, solve_budget_exhaustive, ConcaveWrapper, ExhaustiveObjective, FairnessMode, ProblemSpec,
};
use tcim_diffusion::Deadline;
use tcim_graph::generators::{illustrative_example, IllustrativeConfig};

use crate::{build_oracle, fmt3, Args, FigureOutput, Table};

/// Runs the theorem-verification experiments.
pub fn run(args: &Args) -> FigureOutput {
    let samples = args.sample_count(200, 1000);
    let mut outputs = FigureOutput::new();

    // ----------------------------------------------------------------- T1 --
    let mut t1 = Table::new(
        "Theorem 1 — f(fair greedy) >= (1 - 1/e) * H(f(optimal unfair))",
        &["instance", "H", "fair total", "optimal total", "bound", "satisfied"],
    );

    let (illustrative, _) = illustrative_example(&IllustrativeConfig::default())
        .expect("illustrative graph construction cannot fail");
    let small_sbm = tcim_datasets::SyntheticConfig {
        num_nodes: 60,
        ..tcim_datasets::SyntheticConfig::default()
    }
    .with_edge_probability(0.2)
    .with_seed(args.seed)
    .build()
    .expect("synthetic graph generation failed");

    for (name, graph, deadline) in [
        ("illustrative tau=2", illustrative, Deadline::finite(2)),
        ("small-sbm tau=3", small_sbm, Deadline::finite(3)),
    ] {
        let graph = Arc::new(graph);
        let oracle = build_oracle(Arc::clone(&graph), deadline, samples, args.seed);
        let optimal = solve_budget_exhaustive(&oracle, 2, None, ExhaustiveObjective::Total)
            .expect("exhaustive optimum failed");
        for wrapper in [ConcaveWrapper::Log, ConcaveWrapper::Sqrt] {
            let spec = ProblemSpec::budget(2)
                .and_then(|spec| spec.with_fairness_wrapper(wrapper))
                .expect("fair budget spec is valid");
            let fair = solve(&oracle, &spec).expect("fair budget solve failed");
            let check = theorem1_check(fair.influence.total(), optimal.influence.total(), wrapper);
            t1.push_row(vec![
                name.to_string(),
                wrapper.to_string(),
                fmt3(check.achieved_total),
                fmt3(check.reference_total),
                fmt3(check.bound),
                check.satisfied.to_string(),
            ]);
        }
    }
    outputs.push(("theory_theorem1".to_string(), t1));

    // ----------------------------------------------------------------- T2 --
    let mut t2 = Table::new(
        "Theorem 2 — |fair cover| <= ln(1 + |V|) * sum_i |per-group cover_i|",
        &["instance", "Q", "fair |S|", "per-group sizes", "bound", "satisfied"],
    );
    let config = tcim_datasets::SyntheticConfig::default().with_seed(args.seed);
    let graph = Arc::new(config.build().expect("synthetic graph generation failed"));
    let oracle = build_oracle(
        Arc::clone(&graph),
        Deadline::finite(config.deadline),
        samples.min(100),
        args.seed,
    );
    for quota in [0.1, 0.2] {
        let cover = ProblemSpec::cover(quota).expect("theorem quotas lie in [0, 1]");
        let fair_spec = cover
            .clone()
            .with_fairness(FairnessMode::GroupQuota { group: None })
            .expect("group quota applies to covers");
        let fair = solve(&oracle, &fair_spec).expect("fair cover solve failed");

        // Per-group greedy cover sizes: certified upper bounds on |S*_i|.
        let mut per_group_sizes = Vec::new();
        for group in graph.group_ids() {
            let spec = cover
                .clone()
                .with_fairness(FairnessMode::GroupQuota { group: Some(group) })
                .expect("group quota applies to covers");
            let report = solve(&oracle, &spec).expect("per-group cover solve failed");
            per_group_sizes.push(report.num_seeds());
        }

        let check = theorem2_check(fair.num_seeds(), &per_group_sizes, graph.num_nodes());
        t2.push_row(vec![
            "synthetic".to_string(),
            format!("{quota}"),
            check.achieved_size.to_string(),
            format!("{:?}", check.per_group_sizes),
            fmt3(check.bound),
            check.satisfied.to_string(),
        ]);
    }
    outputs.push(("theory_theorem2".to_string(), t2));

    outputs
}

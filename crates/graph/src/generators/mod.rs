//! Random and planted graph generators.
//!
//! The paper's synthetic evaluation (Section 6) uses a two-block stochastic
//! block model; Figure 1 uses a small hand-designed graph; the real-world
//! surrogates in `tcim-datasets` are built from the degree-corrected SBM. All
//! generators are deterministic given an explicit `u64` seed.

mod barabasi_albert;
mod erdos_renyi;
mod illustrative;
mod sbm;
mod watts_strogatz;

pub use barabasi_albert::{barabasi_albert, BarabasiAlbertConfig};
pub use erdos_renyi::{erdos_renyi, ErdosRenyiConfig};
pub use illustrative::{illustrative_example, IllustrativeConfig};
pub use sbm::{stochastic_block_model, SbmConfig};
pub use watts_strogatz::{watts_strogatz, WattsStrogatzConfig};

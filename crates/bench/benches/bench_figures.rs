//! End-to-end figure pipelines at reduced sample counts, benchmarked with
//! Criterion so regressions in the full experiment harness are caught by
//! `cargo bench`. Each benchmark runs the same code path as the
//! corresponding `src/bin` binary.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use tcim_bench::{figures, Args};

fn tiny_args() -> Args {
    Args {
        samples: Some(20),
        seed: 7,
        part: None,
        budget: Some(5),
        scale: Some(0.01),
        out_dir: std::env::temp_dir().join("fairtcim-bench-figures"),
        full: false,
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipelines");
    group.sample_size(10);

    group.bench_function("fig1_illustrative", |b| {
        let args = Args { samples: Some(20), ..tiny_args() };
        b.iter(|| black_box(figures::fig1::run(&args)))
    });
    group.bench_function("fig4a_budget_synthetic", |b| {
        let args = Args { part: Some("a".to_string()), ..tiny_args() };
        b.iter(|| black_box(figures::fig4::run(&args)))
    });
    group.bench_function("fig6_cover_synthetic", |b| {
        let args = Args { part: Some("c".to_string()), ..tiny_args() };
        b.iter(|| black_box(figures::fig6::run(&args)))
    });
    group.bench_function("fig9a_instagram_scaled", |b| {
        let args = Args { part: Some("a".to_string()), ..tiny_args() };
        b.iter(|| black_box(figures::fig9::run(&args)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

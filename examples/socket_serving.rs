//! Socket serving: run the campaign server on a real TCP socket, talk to it
//! with the blocking JSONL client — ping, a pipelined solve sweep, a stats
//! probe — then shut it down gracefully and read the final report.
//!
//! The in-process equivalent of
//!
//! ```text
//! tcim_serve --listen 127.0.0.1:7341 &
//! tcim_query --connect 127.0.0.1:7341 --op ping
//! tcim_query --connect 127.0.0.1:7341 --op solve_budget --dataset synthetic ...
//! tcim_query --connect 127.0.0.1:7341 --op stats
//! tcim_query --connect 127.0.0.1:7341 --op shutdown
//! ```
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example socket_serving
//! ```

use std::sync::Arc;

use fairtcim::diffusion::ParallelismConfig;
use fairtcim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Bind on an ephemeral port and serve in the background. The engine
    //    (and its oracle cache) is shared across every connection.
    let engine = Arc::new(ServiceEngine::new(ParallelismConfig::auto()));
    let server = Server::bind_tcp("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())?;
    let addr = server.tcp_addr().expect("tcp servers know their address");
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.run());
    println!("serving on {addr}");

    // 2. Ping: protocol version and the op list, no oracle required.
    let mut client = Client::connect_tcp(addr)?;
    let pong = client.call(&Request::parse_line(r#"{"id":0,"op":"ping"}"#)?)?;
    println!("ping -> protocol v{}", pong.get("protocol").and_then(|v| v.as_u64()).unwrap_or(0));

    // 3. A pipelined deadline sweep: all requests go out before the first
    //    response is read; the server still answers strictly in order.
    let sweep: Vec<Request> = [2u32, 4, 6, 8]
        .iter()
        .map(|tau| {
            Request::parse_line(&format!(
                r#"{{"id":"tau{tau}","op":"solve_budget","dataset":"synthetic","deadline":{tau},"samples":200,"budget":5,"fair":true}}"#
            ))
        })
        .collect::<Result<_, _>>()?;
    for request in &sweep {
        client.send(request)?;
    }
    println!("{:<8} {:>8} {:>10}", "query", "seeds", "coverage");
    for _ in &sweep {
        let response = client.recv()?.expect("server answers every request");
        let id = response.get("id").and_then(|v| v.as_str()).unwrap_or("?");
        let seeds = response.get("seeds").and_then(|v| v.as_arr()).map(<[_]>::len).unwrap_or(0);
        let coverage = response.get("total_fraction").and_then(|v| v.as_f64()).unwrap_or(0.0);
        println!("{id:<8} {seeds:>8} {coverage:>10.3}");
    }

    // 4. Stats over the wire: the same snapshot `tcim_serve` logs on
    //    shutdown — request counts, p50/p99 latency, cache hit rates.
    let stats = client.call(&Request::parse_line(r#"{"id":1,"op":"stats"}"#)?)?;
    let requests = stats.get("requests").expect("stats carry request counters");
    let oracles = stats.get("cache").and_then(|c| c.get("oracles")).expect("cache counters");
    println!(
        "stats -> {} served, p99 {}us, oracle hit rate {:.2}",
        requests.get("total").and_then(|v| v.as_u64()).unwrap_or(0),
        requests.get("p99_us").and_then(|v| v.as_u64()).unwrap_or(0),
        oracles.get("hit_rate").and_then(|v| v.as_f64()).unwrap_or(0.0),
    );

    // 5. Graceful shutdown: in-flight work drains before the server exits
    //    (a `{"op":"shutdown"}` request over the wire does the same).
    shutdown.trigger();
    let report = serving.join().expect("server thread")?;
    println!("shutdown: drained={}, {}", report.drained, report.stats.summary_line());
    Ok(())
}

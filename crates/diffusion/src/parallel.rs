//! Parallelism control for Monte-Carlo estimation.
//!
//! Every parallel code path in this crate is **deterministic**: world `i` is
//! always sampled from `StdRng::seed_from_u64(base_seed + i)` and per-world
//! activation counts are accumulated as integers (`u64`) before the single
//! final conversion to `f64`, so serial and parallel runs — at *any* thread
//! count — produce bitwise-identical [`crate::GroupInfluence`] vectors.
//! Parallelism is therefore purely a throughput knob, safe to flip anywhere.

use rayon::{ThreadPool, ThreadPoolBuilder};

/// How many worker threads Monte-Carlo sampling and evaluation may use.
///
/// The default is [`ParallelismConfig::auto`], which follows the machine
/// (`RAYON_NUM_THREADS` or the number of available cores). Solvers thread
/// this knob through [`crate::WorldsConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelismConfig {
    /// Requested worker threads; `0` means "decide from the environment".
    num_threads: usize,
}

impl ParallelismConfig {
    /// Follow the environment (all available cores unless `RAYON_NUM_THREADS`
    /// caps them).
    pub const fn auto() -> Self {
        ParallelismConfig { num_threads: 0 }
    }

    /// Single-threaded execution.
    pub const fn serial() -> Self {
        ParallelismConfig { num_threads: 1 }
    }

    /// Exactly `num_threads` workers; `0` is equivalent to [`Self::auto`].
    pub const fn fixed(num_threads: usize) -> Self {
        ParallelismConfig { num_threads }
    }

    /// The thread count this configuration resolves to on this machine.
    pub fn resolved_threads(&self) -> usize {
        if self.num_threads == 0 {
            rayon::current_num_threads()
        } else {
            self.num_threads
        }
    }

    /// `true` when the configuration resolves to exactly one thread.
    pub fn is_serial(&self) -> bool {
        self.resolved_threads() <= 1
    }

    /// Runs `op` under a thread pool sized by this configuration.
    ///
    /// Public so higher layers (the campaign-serving batch engine, custom
    /// experiment harnesses) can fan work out under the same knob the
    /// estimators use. Rayon parallel iterators inside `op` pick up the pool
    /// automatically.
    pub fn run<R>(&self, op: impl FnOnce() -> R) -> R {
        let pool: ThreadPool = ThreadPoolBuilder::new()
            .num_threads(self.resolved_threads())
            .build()
            // lint:allow(panic): the vendored rayon stand-in's build() is infallible by construction
            .expect("thread pool construction cannot fail");
        pool.install(op)
    }
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        ParallelismConfig::auto()
    }
}

impl From<usize> for ParallelismConfig {
    /// `0` maps to [`ParallelismConfig::auto`], anything else to
    /// [`ParallelismConfig::fixed`].
    fn from(num_threads: usize) -> Self {
        ParallelismConfig::fixed(num_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resolves_to_one_thread() {
        assert_eq!(ParallelismConfig::serial().resolved_threads(), 1);
        assert!(ParallelismConfig::serial().is_serial());
    }

    #[test]
    fn fixed_resolves_to_the_requested_count() {
        assert_eq!(ParallelismConfig::fixed(7).resolved_threads(), 7);
        assert!(!ParallelismConfig::fixed(7).is_serial());
        assert_eq!(ParallelismConfig::from(3), ParallelismConfig::fixed(3));
    }

    #[test]
    fn auto_resolves_to_at_least_one_thread() {
        assert!(ParallelismConfig::auto().resolved_threads() >= 1);
        assert_eq!(ParallelismConfig::default(), ParallelismConfig::auto());
        assert_eq!(ParallelismConfig::from(0), ParallelismConfig::auto());
    }

    #[test]
    fn run_executes_under_the_requested_pool() {
        let got = ParallelismConfig::fixed(2).run(rayon::current_num_threads);
        assert_eq!(got, 2);
    }
}

// Fixture: unused-suppression must fire on an annotation whose rule never
// produces a finding at the annotated site — stale allowances rot into
// false documentation.

// lint:allow(hash-iter): left over from a deleted HashMap iteration
pub fn total(values: &[u32]) -> u32 {
    values.iter().sum()
}

//! Micro-benchmarks of single-cascade simulation (IC and LT) and live-edge
//! world sampling on the synthetic SBM.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcim_datasets::SyntheticConfig;
use tcim_diffusion::{simulate_ic_seeded, simulate_lt_seeded, LiveEdgeWorld, LtWeights};
use tcim_graph::NodeId;

fn bench_ic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ic_simulation");
    group.sample_size(20);
    for &nodes in &[200usize, 500] {
        let graph = Arc::new(
            SyntheticConfig { num_nodes: nodes, ..SyntheticConfig::default() }.build().unwrap(),
        );
        let seeds: Vec<NodeId> = (0..10u32).map(NodeId).collect();
        group.bench_with_input(BenchmarkId::new("single_cascade", nodes), &nodes, |b, _| {
            let mut run = 0u64;
            b.iter(|| {
                run += 1;
                black_box(simulate_ic_seeded(&graph, &seeds, run).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_lt(c: &mut Criterion) {
    let graph = Arc::new(SyntheticConfig::default().build().unwrap());
    let weights = LtWeights::from_graph(&graph);
    let seeds: Vec<NodeId> = (0..10u32).map(NodeId).collect();
    let mut group = c.benchmark_group("lt_simulation");
    group.sample_size(20);
    group.bench_function("single_cascade_500", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            black_box(simulate_lt_seeded(&graph, &weights, &seeds, run).unwrap())
        });
    });
    group.finish();
}

fn bench_world_sampling(c: &mut Criterion) {
    let graph = Arc::new(SyntheticConfig::default().build().unwrap());
    let mut group = c.benchmark_group("live_edge_worlds");
    group.sample_size(20);
    group.bench_function("sample_world_500", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| black_box(LiveEdgeWorld::sample(&graph, &mut rng)));
    });
    group.finish();
}

use rand::SeedableRng;

criterion_group!(benches, bench_ic, bench_lt, bench_world_sampling);
criterion_main!(benches);

//! Node clustering used to derive *topological* groups.
//!
//! Appendix C of the paper groups the Facebook-SNAP graph into five groups by
//! spectral clustering and then studies influence disparity across those
//! clusters. [`spectral_clustering`] implements that pipeline from scratch
//! (subspace power iteration on the symmetrically normalized adjacency
//! matrix followed by k-means on the embedding); [`label_propagation`]
//! offers a cheaper alternative used in tests and the fairness-audit
//! example.

mod kmeans;
mod label_propagation;
mod spectral;

pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use label_propagation::{label_propagation, LabelPropagationConfig};
pub use spectral::{spectral_clustering, SpectralConfig};

use crate::ids::GroupId;

/// Converts raw cluster labels into dense [`GroupId`]s ordered by decreasing
/// cluster size (cluster 0 is the largest), so that "majority group" always
/// means group 0 regardless of label order produced by the algorithm.
pub fn labels_to_groups(labels: &[usize]) -> Vec<GroupId> {
    if labels.is_empty() {
        return Vec::new();
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(sizes[c]));
    let mut remap = vec![0usize; k];
    for (new, &old) in order.iter().enumerate() {
        remap[old] = new;
    }
    labels.iter().map(|&l| GroupId::from_index(remap[l])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_remapped_by_cluster_size() {
        // Cluster 2 is largest (3 nodes), then 0 (2), then 1 (1).
        let labels = vec![0, 2, 2, 1, 2, 0];
        let groups = labels_to_groups(&labels);
        assert_eq!(groups[1], GroupId(0));
        assert_eq!(groups[0], GroupId(1));
        assert_eq!(groups[3], GroupId(2));
        assert_eq!(labels_to_groups(&[]), Vec::<GroupId>::new());
    }
}

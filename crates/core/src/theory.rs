//! Checks for the paper's theoretical guarantees.
//!
//! * **Theorem 1** (FAIRTCIM-BUDGET): the greedy solution `Ŝ` of P4 satisfies
//!   `f_τ(Ŝ; V) ≥ (1 − 1/e) · H(f_τ(S*; V))` where `S*` is an optimal
//!   solution of the *unfair* problem P1.
//! * **Theorem 2** (FAIRTCIM-COVER): the greedy solution `Ŝ` of P6 satisfies
//!   `|Ŝ| ≤ ln(1 + |V|) · Σ_i |S*_i|` where `S*_i` is an optimal solution of
//!   the per-group cover problem.
//!
//! Optimal solutions are intractable on real instances; the experiment
//! harness substitutes the exhaustive optimum on the illustrative graph and
//! certified over-estimates (per-group greedy solutions) elsewhere, as
//! documented in `EXPERIMENTS.md`.

use crate::concave::ConcaveWrapper;

/// Outcome of a Theorem 1 verification.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem1Check {
    /// Total influence achieved by the fair greedy solution `f_τ(Ŝ; V)`.
    pub achieved_total: f64,
    /// Reference total influence `f_τ(S*; V)` of the (near-)optimal unfair
    /// solution used for the bound.
    pub reference_total: f64,
    /// The guaranteed lower bound `(1 − 1/e) · H(f_τ(S*; V))`.
    pub bound: f64,
    /// Whether the achieved value satisfies the bound (with numerical slack).
    pub satisfied: bool,
}

/// Verifies the Theorem 1 lower bound.
///
/// `achieved_total` is the total influence of the greedy FAIRTCIM-BUDGET
/// solution, `reference_total` the total influence of an optimal (or upper
/// bounding) solution of TCIM-BUDGET, and `wrapper` the concave `H` used.
pub fn theorem1_check(
    achieved_total: f64,
    reference_total: f64,
    wrapper: ConcaveWrapper,
) -> Theorem1Check {
    let bound = (1.0 - 1.0 / std::f64::consts::E) * wrapper.apply(reference_total);
    Theorem1Check {
        achieved_total,
        reference_total,
        bound,
        satisfied: achieved_total + 1e-9 >= bound,
    }
}

/// Outcome of a Theorem 2 verification.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem2Check {
    /// Seed-set size of the greedy FAIRTCIM-COVER solution `|Ŝ|`.
    pub achieved_size: usize,
    /// Sizes of the per-group reference cover solutions `|S*_i|`.
    pub per_group_sizes: Vec<usize>,
    /// The guaranteed upper bound `ln(1 + |V|) · Σ_i |S*_i|`.
    pub bound: f64,
    /// Whether the achieved size satisfies the bound.
    pub satisfied: bool,
}

/// Verifies the Theorem 2 upper bound.
///
/// `achieved_size` is the number of seeds the greedy FAIRTCIM-COVER solution
/// used, `per_group_sizes` the sizes of (upper bounds on) optimal per-group
/// cover solutions, and `num_nodes` the population size `|V|`.
pub fn theorem2_check(
    achieved_size: usize,
    per_group_sizes: &[usize],
    num_nodes: usize,
) -> Theorem2Check {
    let total: usize = per_group_sizes.iter().sum();
    let bound = (1.0 + num_nodes as f64).ln() * total as f64;
    Theorem2Check {
        achieved_size,
        per_group_sizes: per_group_sizes.to_vec(),
        bound,
        satisfied: (achieved_size as f64) <= bound + 1e-9,
    }
}

/// The multiplicative approximation factor discussed after Theorem 1:
/// `(1 − 1/e) · H(f*) / f*`, i.e. how much of the optimal unfair influence
/// the fair solution is guaranteed to retain. Returns 0 for `f* = 0`.
pub fn theorem1_approximation_factor(reference_total: f64, wrapper: ConcaveWrapper) -> f64 {
    if reference_total <= 0.0 {
        return 0.0;
    }
    (1.0 - 1.0 / std::f64::consts::E) * wrapper.apply(reference_total) / reference_total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_bound_is_computed_and_checked() {
        let check = theorem1_check(50.0, 60.0, ConcaveWrapper::Log);
        let expected = (1.0 - 1.0 / std::f64::consts::E) * (61.0f64).ln();
        assert!((check.bound - expected).abs() < 1e-12);
        assert!(check.satisfied);

        let failing = theorem1_check(0.5, 60.0, ConcaveWrapper::Identity);
        assert!(!failing.satisfied);
    }

    #[test]
    fn theorem1_identity_recovers_the_classical_guarantee() {
        let check = theorem1_check(40.0, 60.0, ConcaveWrapper::Identity);
        assert!((check.bound - (1.0 - 1.0 / std::f64::consts::E) * 60.0).abs() < 1e-12);
        assert!(check.satisfied);
    }

    #[test]
    fn theorem2_bound_scales_with_group_solutions() {
        let check = theorem2_check(12, &[3, 4], 500);
        let expected = (501.0f64).ln() * 7.0;
        assert!((check.bound - expected).abs() < 1e-12);
        assert!(check.satisfied);

        let failing = theorem2_check(10_000, &[1, 1], 500);
        assert!(!failing.satisfied);
    }

    #[test]
    fn approximation_factor_orders_wrappers_by_curvature() {
        let f = 100.0;
        let id = theorem1_approximation_factor(f, ConcaveWrapper::Identity);
        let sqrt = theorem1_approximation_factor(f, ConcaveWrapper::Sqrt);
        let log = theorem1_approximation_factor(f, ConcaveWrapper::Log);
        assert!(id > sqrt && sqrt > log, "id {id}, sqrt {sqrt}, log {log}");
        assert!((id - (1.0 - 1.0 / std::f64::consts::E)).abs() < 1e-12);
        assert_eq!(theorem1_approximation_factor(0.0, ConcaveWrapper::Log), 0.0);
    }
}

//! Figure 9 — Instagram-Activities dataset (surrogate), budget and cover
//! problems with gender groups.
//!
//! * 9a: total / male / female influenced fraction for P1, P4-log, P4-sqrt
//!   with `B = 30`, `τ = 2`, seeds restricted to a 5000-node candidate pool.
//! * 9b: per-group influenced fraction for quotas `Q ∈ {0.0015, 0.002}`.
//! * 9c: solution set size `|S|` for the same quotas.
//!
//! The surrogate defaults to 10% of the original graph size (pass
//! `--scale 1.0` for the full half-million-node graph); quotas are as in the
//! paper, which are tiny because the graph is extremely sparse.

use std::sync::Arc;

use tcim_core::ConcaveWrapper;
use tcim_datasets::instagram::{
    instagram_surrogate, InstagramConfig, INSTAGRAM_CANDIDATE_POOL, INSTAGRAM_DEADLINE,
};
use tcim_diffusion::Deadline;
use tcim_graph::NodeId;

use crate::{
    budget_summary, build_oracle, fmt4, run_budget_suite, run_cover_suite, Args, FigureOutput,
    Table,
};

/// Runs the Figure 9 experiments (panels selected via `--part`).
pub fn run(args: &Args) -> FigureOutput {
    let scale = args.scale.unwrap_or(if args.full { 0.1 } else { 0.02 });
    let samples = args.sample_count(100, 500);
    let budget = args.budget.unwrap_or(30);
    let graph = Arc::new(
        instagram_surrogate(&InstagramConfig { scale, seed: args.seed })
            .expect("instagram surrogate failed"),
    );
    println!(
        "[fig9] instagram surrogate at scale {scale}: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // The paper restricts seed selection to 5000 randomly chosen nodes while
    // evaluating influence over the whole graph.
    let pool_size = INSTAGRAM_CANDIDATE_POOL.min(graph.num_nodes());
    let candidates: Vec<NodeId> =
        tcim_core::baselines::random_seeds(&graph, pool_size, args.seed ^ 0x5eed);

    let deadline = Deadline::finite(INSTAGRAM_DEADLINE);
    let oracle = build_oracle(Arc::clone(&graph), deadline, samples, args.seed);
    let mut outputs = FigureOutput::new();

    if args.runs_part("a") {
        let reports = run_budget_suite(
            &oracle,
            budget,
            Some(candidates.clone()),
            &[ConcaveWrapper::Log, ConcaveWrapper::Sqrt],
        );
        let mut table = Table::new(
            &format!("fig9a — budget problem on instagram (B = {budget}, tau = 2)"),
            &["algorithm", "total", "female", "male", "disparity"],
        );
        for report in &reports {
            let (total, groups, disparity) = budget_summary(report);
            table.push_row(vec![
                report.label.clone(),
                fmt4(total),
                fmt4(groups[0]),
                fmt4(groups[1]),
                fmt4(disparity),
            ]);
        }
        outputs.push(("fig9a_budget".to_string(), table));
    }

    if args.runs_part("b") || args.runs_part("c") {
        let mut influence_table = Table::new(
            "fig9b — cover problem on instagram: per-group influenced fraction vs quota",
            &["Q", "P2 female", "P2 male", "P6 female", "P6 male"],
        );
        let mut size_table = Table::new(
            "fig9c — cover problem on instagram: solution set size vs quota",
            &["Q", "P2 |S|", "P6 |S|"],
        );
        for &quota in &[0.0015, 0.002] {
            let (unfair, fair) =
                run_cover_suite(&oracle, quota, Some(200), Some(candidates.clone()));
            let u = unfair.fairness();
            let f = fair.fairness();
            influence_table.push_row(vec![
                format!("{quota}"),
                fmt4(u.normalized_utilities[0]),
                fmt4(u.normalized_utilities[1]),
                fmt4(f.normalized_utilities[0]),
                fmt4(f.normalized_utilities[1]),
            ]);
            size_table.push_row(vec![
                format!("{quota}"),
                unfair.seed_count().to_string(),
                fair.seed_count().to_string(),
            ]);
        }
        if args.runs_part("b") {
            outputs.push(("fig9b_quota_influence".to_string(), influence_table));
        }
        if args.runs_part("c") {
            outputs.push(("fig9c_quota_sizes".to_string(), size_table));
        }
    }

    outputs
}

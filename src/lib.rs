//! # fairtcim
//!
//! Fairness-aware **time-critical influence maximization** in social
//! networks — a from-scratch Rust reproduction of
//! *"On the Fairness of Time-Critical Influence Maximization in Social
//! Networks"* (Ali, Babaei, Chakraborty, Mirzasoleiman, Gummadi, Singla;
//! ICDE 2022, arXiv:1905.06618).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`graph`] (`tcim-graph`) — CSR social graphs with groups, generators,
//!   centrality, clustering and IO,
//! * [`diffusion`] (`tcim-diffusion`) — independent-cascade / linear-threshold
//!   simulation and time-critical influence estimators,
//! * [`submodular`] (`tcim-submodular`) — greedy / CELF / stochastic greedy /
//!   greedy cover,
//! * [`core`] (`tcim-core`) — the [`ProblemSpec`](core::ProblemSpec) problem
//!   description, the unified [`solve`](core::solve) entrypoint covering
//!   P1–P6, the disparity measure and the Theorem 1/2 checks,
//! * [`datasets`] (`tcim-datasets`) — the paper's synthetic suite and
//!   surrogates for its three real-world datasets,
//! * [`service`] (`tcim-service`) — the campaign-serving subsystem: cached
//!   oracles, a batched query engine and the JSONL protocol (a direct wire
//!   codec for `ProblemSpec`) behind the `tcim_serve` / `tcim_query`
//!   binaries,
//! * [`campaign`] — the fluent [`Campaign`](campaign::Campaign) builder tying
//!   the layers together.
//!
//! The [`prelude`] pulls in the handful of types most applications need; the
//! `examples/` directory shows end-to-end usage and `crates/bench` regenerates
//! every figure of the paper.
//!
//! ```
//! use fairtcim::prelude::*;
//!
//! // The paper's synthetic network: compare the unfair and fair budget
//! // campaigns under a tight deadline, sharing one sampled world pool.
//! let base = Campaign::on(Dataset::Synthetic)
//!     .shared_cache(std::sync::Arc::new(OracleCache::new()))
//!     .deadline(5)
//!     .estimator(worlds(50, 0))
//!     .budget(10);
//! let unfair = base.clone().solve().unwrap();
//! let fair = base.clone().fair(ConcaveWrapper::Log).solve().unwrap();
//! assert!(fair.disparity() <= unfair.disparity() + 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tcim_core as core;
pub use tcim_datasets as datasets;
pub use tcim_diffusion as diffusion;
pub use tcim_graph as graph;
pub use tcim_service as service;
pub use tcim_submodular as submodular;

pub mod campaign;

/// The most commonly used types and functions, re-exported flat.
pub mod prelude {
    pub use crate::campaign::{monte_carlo, ris, worlds, Campaign};
    pub use tcim_core::baselines::{
        evaluate_seed_set, group_proportional_degree_seeds, random_seeds, top_degree_seeds,
        top_pagerank_seeds,
    };
    pub use tcim_core::{
        audit_seed_set, disparity, solve, solve_budget_exhaustive, BudgetConfig, ConcaveWrapper,
        ConstrainedBudgetReport, ConstrainedCoverReport, ConstrainedOutcome, CoreError,
        CoverOutcome, CoverProblemConfig, CoverReport, Estimator, EstimatorConfig,
        ExhaustiveObjective, FairnessMode, FairnessReport, GreedyAlgorithm, Objective, ProblemSpec,
        SolverReport,
    };
    // Deprecated legacy shims, kept importable for one release.
    #[allow(deprecated)]
    pub use tcim_core::{
        solve_constrained_budget, solve_constrained_cover, solve_fair_tcim_budget,
        solve_fair_tcim_cover, solve_group_tcim_cover, solve_tcim_budget, solve_tcim_cover,
    };
    pub use tcim_datasets::registry::{Dataset, DatasetBundle};
    pub use tcim_datasets::{
        GeneratorFamily, GroupModel, ScenarioSpec, SyntheticConfig, WeightModel,
    };
    pub use tcim_diffusion::{
        AdaptiveRis, Deadline, GroupInfluence, InfluenceOracle, MonteCarloEstimator,
        ParallelismConfig, RisConfig, RisEstimator, WorldEstimator, WorldsConfig,
    };
    pub use tcim_graph::{Graph, GraphBuilder, GroupId, NodeId};
    pub use tcim_service::{
        Client, ModelKind, OracleCache, OracleSpec, Request, Server, ServerConfig, ServiceEngine,
        ShutdownHandle,
    };
}

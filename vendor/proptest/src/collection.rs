//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Range of lengths for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    /// Draws a length.
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max_inclusive: exact }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange { min: range.start, max_inclusive: range.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *range.start(), max_inclusive: *range.end() }
    }
}

/// Strategy generating a `Vec` whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_respect_the_size_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = vec(0u32..10, 2..5usize);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
        let inclusive = vec(0u32..10, 0..=3usize);
        for _ in 0..100 {
            assert!(inclusive.sample(&mut rng).len() <= 3);
        }
    }
}
